//! Observational equivalence across backend families.
//!
//! Three properties, same method — drive different adapter stacks with
//! identical scripts and demand identical observables:
//!
//! 1. **Sharded ≡ global-lock** (PR 2): the lock-striped maps behind
//!    `DataProvider`/`MetaProvider` must be a pure performance change
//!    relative to the seed's single `RwLock<HashMap>` layout.
//! 2. **In-memory ≡ RPC-loopback** (PR 4): a full client deployment
//!    wired over TCP sockets (`blobseer_rpc::LoopbackCluster`) must be
//!    observationally identical to the in-memory one for every op script
//!    — sizes, versions, bytes read, **and error variants**, which must
//!    cross the wire as themselves.
//! 3. **Batched ≡ single-op sequence** (this PR): the vectored port
//!    methods (`put_many`/`get_many`/`delete_many`) must answer exactly
//!    like the equivalent sequence of single ops, per item and in input
//!    order, on every adapter family — in-memory sharded, fault-decorated
//!    (including partial batch failures via `FailOnce`) and the RPC
//!    loopback adapters (including per-item conflicts inside one frame).
//!
//! 4. **Cached ≡ uncached** (PR 7): the hot-read LRU decorators
//!    (`CachedBlockStore`/`CachedMetaStore`) must be observationally
//!    invisible under every script — including conflicts, deletes and
//!    evictions forced by a tiny byte budget.
//!
//! 5. **Disk-backed ≡ in-memory** (this PR): the append-only stores of
//!    `blobseer-disk` must answer every op script exactly like the
//!    in-memory adapters — per-item results, conflicts, byte accounting —
//!    including variants that close and reopen the disk stores mid-script
//!    (a simulated restart must be observationally a no-op).
//!
//! Plus wire-codec round-trip properties: random domain values encode and
//! decode to themselves, and every `Error` variant survives the trip.

use blobseer_core::block_store::{DataProvider, ProviderSet};
use blobseer_core::dht::MetaDht;
use blobseer_core::faults::{FaultPlan, PutFault};
use blobseer_core::meta::key::{NodeKey, Pos};
use blobseer_core::meta::node::{BlockDescriptor, NodeRef, TreeNode};
use blobseer_core::ports::{BlockStore, MetaStore};
use blobseer_core::{BlobSeer, CachedBlockStore, CachedMetaStore, EngineStats, WriteIntent};
use blobseer_disk::testutil::TempDir;
use blobseer_disk::{DiskMetaStore, DiskProviderSet};
use blobseer_rpc::LoopbackCluster;
use blobseer_types::wire::{error_fixture, WireReader, WireWriter};
use blobseer_types::{BlobId, BlobSeerConfig, BlockId, Error, NodeId, Version};
use bytes::Bytes;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

/// One step of a block-store workload. Several logical writers' scripts are
/// interleaved by construction: the generator draws (writer, op) pairs and
/// the keys are namespaced per writer, exactly the access pattern of
/// concurrent clients that never violate block immutability.
#[derive(Clone, Debug)]
enum BlockOp {
    Put { writer: u8, key: u8 },
    Get { writer: u8, key: u8 },
    Delete { writer: u8, key: u8 },
}

fn block_ops() -> impl Strategy<Value = Vec<BlockOp>> {
    let op = prop_oneof![
        (0u8..4, any::<u8>()).prop_map(|(writer, key)| BlockOp::Put { writer, key }),
        (0u8..4, any::<u8>()).prop_map(|(writer, key)| BlockOp::Get { writer, key }),
        (0u8..4, any::<u8>()).prop_map(|(writer, key)| BlockOp::Delete { writer, key }),
    ];
    proptest::collection::vec(op, 1..200)
}

/// Deterministic content per block id, so re-puts are always idempotent.
fn content(writer: u8, key: u8) -> Bytes {
    Bytes::from(vec![writer ^ key; 1 + (key % 7) as usize])
}

fn block_id(writer: u8, key: u8) -> BlockId {
    BlockId::new(1 + writer as u64 * 1000 + key as u64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The sharded data provider behaves exactly like the global-lock one
    /// under interleaved put/get/delete scripts.
    #[test]
    fn sharded_data_provider_matches_global_lock(ops in block_ops()) {
        let global = DataProvider::with_shards(NodeId::new(0), 1);
        let sharded = DataProvider::with_shards(NodeId::new(0), 32);
        for op in &ops {
            match *op {
                BlockOp::Put { writer, key } => {
                    let id = block_id(writer, key);
                    global.put(id, content(writer, key));
                    sharded.put(id, content(writer, key));
                }
                BlockOp::Get { writer, key } => {
                    let id = block_id(writer, key);
                    prop_assert_eq!(global.get(id), sharded.get(id));
                }
                BlockOp::Delete { writer, key } => {
                    let id = block_id(writer, key);
                    prop_assert_eq!(global.delete(id), sharded.delete(id));
                }
            }
            prop_assert_eq!(global.block_count(), sharded.block_count());
            prop_assert_eq!(global.bytes_stored(), sharded.bytes_stored());
        }
        // Full final sweep over the whole key space.
        for writer in 0..4u8 {
            for key in 0..=255u8 {
                let id = block_id(writer, key);
                prop_assert_eq!(global.contains(id), sharded.contains(id));
                prop_assert_eq!(global.get(id).ok(), sharded.get(id).ok());
            }
        }
    }

    /// Same for the metadata DHT, including conflict outcomes.
    #[test]
    fn sharded_meta_dht_matches_global_lock(ops in block_ops()) {
        let global = MetaDht::with_stripes(4, 2, 1);
        let sharded = MetaDht::with_stripes(4, 2, 32);
        let key_of = |writer: u8, key: u8| {
            NodeKey::new(
                BlobId::new(1 + writer as u64),
                Version::new(1 + (key % 13) as u64),
                Pos::new(key as u64, 1),
            )
        };
        let node_of = |writer: u8, key: u8| {
            TreeNode::Leaf(BlockDescriptor {
                block_id: block_id(writer, key),
                providers: vec![writer as u32],
                len: 64,
            })
        };
        for op in &ops {
            match *op {
                BlockOp::Put { writer, key } => {
                    let a = global.put(key_of(writer, key), node_of(writer, key));
                    let b = sharded.put(key_of(writer, key), node_of(writer, key));
                    prop_assert_eq!(a, b);
                }
                BlockOp::Get { writer, key } => {
                    prop_assert_eq!(
                        global.get(&key_of(writer, key)),
                        sharded.get(&key_of(writer, key))
                    );
                }
                BlockOp::Delete { writer, key } => {
                    prop_assert_eq!(
                        global.delete(&key_of(writer, key)),
                        sharded.delete(&key_of(writer, key))
                    );
                }
            }
            prop_assert_eq!(global.node_count(), sharded.node_count());
        }
    }
}

// --- batched ≡ single-op sequence -------------------------------------------

/// One step of a *vectored* workload: each op carries a whole batch, and
/// `FailNext` arms a transient `FailOnce` fault so partial batch failures
/// are exercised (the decorators apply faults per item, so exactly the
/// first item of the next batch is refused).
#[derive(Clone, Debug)]
enum VecOp {
    PutMany { provider: u8, keys: Vec<u8> },
    GetMany { provider: u8, keys: Vec<u8> },
    DeleteMany { provider: u8, keys: Vec<u8> },
    FailNext,
}

fn vec_ops() -> impl Strategy<Value = Vec<VecOp>> {
    fn keys() -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(any::<u8>(), 0..24)
    }
    let op = prop_oneof![
        (0u8..2, keys()).prop_map(|(provider, keys)| VecOp::PutMany { provider, keys }),
        (0u8..2, keys()).prop_map(|(provider, keys)| VecOp::GetMany { provider, keys }),
        (0u8..2, keys()).prop_map(|(provider, keys)| VecOp::DeleteMany { provider, keys }),
        (0u8..1).prop_map(|_| VecOp::FailNext),
    ];
    proptest::collection::vec(op, 1..40)
}

/// Replays `script` against two identically built stores — one driven
/// through the vectored methods, one through the equivalent single-op
/// sequences — and demands identical per-item results and state.
fn assert_block_batches_match_singles(
    script: &[VecOp],
    batched: &dyn BlockStore,
    sequential: &dyn BlockStore,
    plans: Option<(&FaultPlan, &FaultPlan)>,
) {
    for op in script {
        match op {
            VecOp::FailNext => {
                if let Some((a, b)) = plans {
                    a.set(PutFault::FailOnce);
                    b.set(PutFault::FailOnce);
                }
            }
            VecOp::PutMany { provider, keys } => {
                let p = *provider as usize;
                let items: Vec<(BlockId, Bytes)> = keys
                    .iter()
                    .map(|&k| (block_id(*provider, k), content(*provider, k)))
                    .collect();
                let a = batched.put_many(p, &items);
                let b: Vec<_> = items
                    .iter()
                    .map(|(id, data)| sequential.put(p, *id, data.clone()))
                    .collect();
                assert_eq!(a, b, "put_many diverged");
            }
            VecOp::GetMany { provider, keys } => {
                let p = *provider as usize;
                let ids: Vec<BlockId> = keys.iter().map(|&k| block_id(*provider, k)).collect();
                let a = batched.get_many(p, &ids);
                let b: Vec<_> = ids.iter().map(|&id| sequential.get(p, id)).collect();
                assert_eq!(a, b, "get_many diverged");
            }
            VecOp::DeleteMany { provider, keys } => {
                let p = *provider as usize;
                let ids: Vec<BlockId> = keys.iter().map(|&k| block_id(*provider, k)).collect();
                let a = batched.delete_many(p, &ids);
                let b: Vec<_> = ids.iter().map(|&id| sequential.delete(p, id)).collect();
                assert_eq!(a, b, "delete_many diverged");
            }
        }
        assert_eq!(batched.total_block_count(), sequential.total_block_count());
        assert_eq!(
            batched.total_bytes_stored(),
            sequential.total_bytes_stored()
        );
        assert_eq!(batched.layout_vector(), sequential.layout_vector());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Vectored ops on the lock-striped in-memory stores are
    /// observationally identical to the equivalent single-op sequences.
    #[test]
    fn in_memory_batches_equal_single_op_sequence(script in vec_ops()) {
        let batched = ProviderSet::with_shards(2, |i| NodeId::new(i as u64), 32);
        let sequential = ProviderSet::with_shards(2, |i| NodeId::new(i as u64), 32);
        assert_block_batches_match_singles(&script, &batched, &sequential, None);
    }

    /// Same through the fault decorators, including partial batch
    /// failures: `FailOnce` refuses exactly the first item of the next
    /// batch on both sides, and the per-item `Result`s line up.
    #[test]
    fn fault_decorated_batches_equal_single_op_sequence(script in vec_ops()) {
        use blobseer_core::faults::FaultyBlockStore;
        let plan_a = FaultPlan::new();
        let plan_b = FaultPlan::new();
        let batched = FaultyBlockStore::new(
            Arc::new(ProviderSet::with_shards(2, |i| NodeId::new(i as u64), 32)),
            Arc::clone(&plan_a),
        );
        let sequential = FaultyBlockStore::new(
            Arc::new(ProviderSet::with_shards(2, |i| NodeId::new(i as u64), 32)),
            Arc::clone(&plan_b),
        );
        assert_block_batches_match_singles(&script, &batched, &sequential, Some((&plan_a, &plan_b)));
        prop_assert_eq!(plan_a.counters(), plan_b.counters(), "identical fault traffic");
    }

    /// Vectored metadata ops ≡ single-op sequences on the DHT, including
    /// per-item `MetadataConflict`s inside one batch (a `conflicting`
    /// re-put of an already-stored key must fail exactly that item).
    #[test]
    fn meta_batches_equal_single_op_sequence(
        script in proptest::collection::vec(
            (0u8..3, proptest::collection::vec((any::<u8>(), any::<bool>()), 0..24)),
            1..30,
        )
    ) {
        let batched = MetaDht::with_stripes(4, 1, 32);
        let sequential = MetaDht::with_stripes(4, 1, 32);
        let key_of = |k: u8| NodeKey::new(
            BlobId::new(1),
            Version::new(1 + (k % 5) as u64),
            Pos::new(k as u64, 1),
        );
        // `salted` flips the node content, so re-putting the same key with
        // the other salt is a conflict — on both sides, at the same index.
        let node_of = |k: u8, salted: bool| {
            TreeNode::Leaf(BlockDescriptor {
                block_id: BlockId::new(k as u64 * 2 + salted as u64),
                providers: vec![0],
                len: 64,
            })
        };
        for (kind, items) in &script {
            match kind {
                0 => {
                    let batch: Vec<(NodeKey, TreeNode)> = items
                        .iter()
                        .map(|&(k, salted)| (key_of(k), node_of(k, salted)))
                        .collect();
                    let a = batched.put_many(&batch);
                    let b: Vec<_> = batch
                        .iter()
                        .map(|(key, node)| sequential.put(*key, node.clone()))
                        .collect();
                    prop_assert_eq!(a, b, "meta put_many diverged");
                }
                1 => {
                    let keys: Vec<NodeKey> = items.iter().map(|&(k, _)| key_of(k)).collect();
                    let a = batched.get_many(&keys);
                    let b: Vec<_> = keys.iter().map(|key| sequential.get(key)).collect();
                    prop_assert_eq!(a, b, "meta get_many diverged");
                }
                _ => {
                    let keys: Vec<NodeKey> = items.iter().map(|&(k, _)| key_of(k)).collect();
                    let a = batched.delete_many(&keys);
                    let b: Vec<_> = keys.iter().map(|key| sequential.delete(key)).collect();
                    prop_assert_eq!(a, b, "meta delete_many diverged");
                }
            }
            prop_assert_eq!(batched.node_count(), sequential.node_count());
        }
    }

    /// The hot-read LRU decorator over the block store is observationally
    /// invisible: every script answers identically with and without it.
    /// The byte budget is tiny (256 B) so eviction churn happens mid-case;
    /// the only permitted difference is the counters.
    #[test]
    fn cached_block_store_is_observationally_transparent(script in vec_ops()) {
        let stats = Arc::new(EngineStats::new());
        let cached = CachedBlockStore::new(
            Arc::new(ProviderSet::with_shards(2, |i| NodeId::new(i as u64), 32)),
            256,
            Arc::clone(&stats),
        );
        let bare = ProviderSet::with_shards(2, |i| NodeId::new(i as u64), 32);
        assert_block_batches_match_singles(&script, &cached, &bare, None);
    }

    /// Same for the metadata-tree decorator, including conflicting re-puts
    /// (the cache must keep serving the *stored* node, never the refused
    /// one) and deletes under eviction pressure.
    #[test]
    fn cached_meta_store_is_observationally_transparent(
        script in proptest::collection::vec(
            (0u8..3, proptest::collection::vec((any::<u8>(), any::<bool>()), 0..24)),
            1..30,
        )
    ) {
        let stats = Arc::new(EngineStats::new());
        let cached = CachedMetaStore::new(
            Arc::new(MetaDht::with_stripes(4, 1, 32)),
            200,
            Arc::clone(&stats),
        );
        let bare = MetaDht::with_stripes(4, 1, 32);
        let key_of = |k: u8| NodeKey::new(
            BlobId::new(1),
            Version::new(1 + (k % 5) as u64),
            Pos::new(k as u64, 1),
        );
        let node_of = |k: u8, salted: bool| {
            TreeNode::Leaf(BlockDescriptor {
                block_id: BlockId::new(k as u64 * 2 + salted as u64),
                providers: vec![0],
                len: 64,
            })
        };
        for (kind, items) in &script {
            match kind {
                0 => {
                    let batch: Vec<(NodeKey, TreeNode)> = items
                        .iter()
                        .map(|&(k, salted)| (key_of(k), node_of(k, salted)))
                        .collect();
                    let a = MetaStore::put_many(&cached, &batch);
                    let b: Vec<_> = batch
                        .iter()
                        .map(|(key, node)| bare.put(*key, node.clone()))
                        .collect();
                    prop_assert_eq!(a, b, "cached meta put diverged");
                }
                1 => {
                    let keys: Vec<NodeKey> = items.iter().map(|&(k, _)| key_of(k)).collect();
                    let a = MetaStore::get_many(&cached, &keys);
                    let b: Vec<_> = keys.iter().map(|key| bare.get(key)).collect();
                    prop_assert_eq!(a, b, "cached meta get diverged");
                }
                _ => {
                    let keys: Vec<NodeKey> = items.iter().map(|&(k, _)| key_of(k)).collect();
                    let a = MetaStore::delete_many(&cached, &keys);
                    let b: Vec<Result<bool, Error>> =
                        keys.iter().map(|key| Ok(bare.delete(key))).collect();
                    prop_assert_eq!(a, b, "cached meta delete diverged");
                }
            }
            prop_assert_eq!(MetaStore::node_count(&cached), bare.node_count());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The disk-backed provider set answers every vectored op script
    /// exactly like the in-memory store driven by the equivalent single-op
    /// sequence — per-item results, block counts, byte accounting, layout.
    #[test]
    fn disk_blocks_equal_in_memory_single_op_sequence(script in vec_ops()) {
        let tmp = TempDir::new("equiv-disk-blocks");
        let disk = DiskProviderSet::open(tmp.path(), 2, |i| NodeId::new(i as u64)).unwrap();
        let mem = ProviderSet::with_shards(2, |i| NodeId::new(i as u64), 32);
        assert_block_batches_match_singles(&script, &disk, &mem, None);
    }

    /// Same property with a simulated process restart between script
    /// sections: `reopen()` drops the in-memory index and rebuilds it from
    /// the volume files, and the equivalence must not notice.
    #[test]
    fn disk_blocks_stay_equivalent_across_mid_script_reopen(script in vec_ops()) {
        let tmp = TempDir::new("equiv-disk-reopen");
        let disk = DiskProviderSet::open(tmp.path(), 2, |i| NodeId::new(i as u64)).unwrap();
        let mem = ProviderSet::with_shards(2, |i| NodeId::new(i as u64), 32);
        for chunk in script.chunks(4) {
            assert_block_batches_match_singles(chunk, &disk, &mem, None);
            disk.reopen().unwrap();
        }
        // Full sweep over the key space after the final restart.
        for provider in 0..2u8 {
            for key in 0..=255u8 {
                let id = block_id(provider, key);
                prop_assert_eq!(
                    BlockStore::get(&disk, provider as usize, id).ok(),
                    BlockStore::get(&mem, provider as usize, id).ok()
                );
            }
        }
    }

    /// The disk metadata store ≡ the in-memory DHT under vectored scripts
    /// with idempotent and conflicting re-puts, restarting the disk store
    /// periodically mid-script. Single-replica DHT: the disk backend keeps
    /// one durable copy per node, so `replication = 1` is the comparable
    /// configuration.
    #[test]
    fn disk_meta_equals_in_memory_across_reopen(
        script in proptest::collection::vec(
            (0u8..3, proptest::collection::vec((any::<u8>(), any::<bool>()), 0..24)),
            1..30,
        )
    ) {
        let tmp = TempDir::new("equiv-disk-meta");
        let disk = DiskMetaStore::open(tmp.path(), 4).unwrap();
        let mem = MetaDht::with_stripes(4, 1, 32);
        let key_of = |k: u8| NodeKey::new(
            BlobId::new(1),
            Version::new(1 + (k % 5) as u64),
            Pos::new(k as u64, 1),
        );
        let node_of = |k: u8, salted: bool| {
            TreeNode::Leaf(BlockDescriptor {
                block_id: BlockId::new(k as u64 * 2 + salted as u64),
                providers: vec![0],
                len: 64,
            })
        };
        for (i, (kind, items)) in script.iter().enumerate() {
            match kind {
                0 => {
                    let batch: Vec<(NodeKey, TreeNode)> = items
                        .iter()
                        .map(|&(k, salted)| (key_of(k), node_of(k, salted)))
                        .collect();
                    let a = MetaStore::put_many(&disk, &batch);
                    let b: Vec<_> = batch
                        .iter()
                        .map(|(key, node)| mem.put(*key, node.clone()))
                        .collect();
                    prop_assert_eq!(a, b, "disk meta put_many diverged");
                }
                1 => {
                    let keys: Vec<NodeKey> = items.iter().map(|&(k, _)| key_of(k)).collect();
                    let a = MetaStore::get_many(&disk, &keys);
                    let b: Vec<_> = keys.iter().map(|key| mem.get(key)).collect();
                    prop_assert_eq!(a, b, "disk meta get_many diverged");
                }
                _ => {
                    let keys: Vec<NodeKey> = items.iter().map(|&(k, _)| key_of(k)).collect();
                    let a = MetaStore::delete_many(&disk, &keys);
                    let b: Vec<Result<bool, Error>> =
                        keys.iter().map(|key| Ok(mem.delete(key))).collect();
                    prop_assert_eq!(a, b, "disk meta delete_many diverged");
                }
            }
            prop_assert_eq!(MetaStore::node_count(&disk), mem.node_count());
            if i % 7 == 3 {
                disk.reopen().unwrap();
            }
        }
        // Placement parity: both sides home every key on the same shard,
        // so a backend swap moves no keys.
        for k in 0..=255u8 {
            let key = key_of(k);
            prop_assert_eq!(
                MetaStore::fanout_shard(&disk, &key),
                mem.shard_of(&key)
            );
        }
    }
}

/// The RPC adapters' vectored frames answer exactly like the in-memory
/// adapters, per item — successes, per-item errors (missing blocks,
/// metadata conflicts inside one batch) and out-of-range providers.
#[test]
fn rpc_batches_equal_in_memory_per_item() {
    let rig = rpc_rig();
    let rpc = rig.over_rpc.providers();
    let mem = rig.in_memory.providers();
    // Ids far above the provider-manager ranges, so raw port traffic never
    // collides with the client-protocol proptest cases sharing the rig.
    let id = |k: u64| BlockId::new(u64::MAX - 1000 + k);
    let items: Vec<(BlockId, Bytes)> = (0..16)
        .map(|k| (id(k), Bytes::from(vec![k as u8; 3 + (k as usize % 5)])))
        .collect();
    assert_eq!(rpc.put_many(1, &items), mem.put_many(1, &items));
    // Mixed present/missing fetch: per-item results line up exactly.
    let probe: Vec<BlockId> = (0..24).map(id).collect();
    assert_eq!(rpc.get_many(1, &probe), mem.get_many(1, &probe));
    // An out-of-range provider fails every item of the batch on the
    // remote adapter (the in-memory stores treat it as a programmer error
    // and panic, same as their single-op methods always have).
    for a in rpc.get_many(99, &probe) {
        assert!(matches!(a, Err(Error::Internal(_))), "{a:?}");
    }
    // Batched deletes: freed bytes per item, then absent.
    assert_eq!(rpc.delete_many(1, &probe), mem.delete_many(1, &probe));
    assert_eq!(rpc.delete_many(1, &probe), mem.delete_many(1, &probe));

    // Metadata: a batch whose middle item conflicts fails exactly that
    // item on both backends, and the surviving items land.
    let rpc_dht = rig.over_rpc.dht();
    let mem_dht = rig.in_memory.dht();
    let key_of = |k: u64| {
        NodeKey::new(
            BlobId::new(u64::MAX - 50),
            Version::new(1 + k),
            Pos::new(0, 1),
        )
    };
    let leaf = |b: u64| {
        TreeNode::Leaf(BlockDescriptor {
            block_id: BlockId::new(b),
            providers: vec![0],
            len: 8,
        })
    };
    let seed: Vec<(NodeKey, TreeNode)> = (0..4).map(|k| (key_of(k), leaf(k))).collect();
    assert_eq!(rpc_dht.put_many(&seed), mem_dht.put_many(&seed));
    let mixed: Vec<(NodeKey, TreeNode)> = vec![
        (key_of(10), leaf(10)), // fresh: lands
        (key_of(2), leaf(99)),  // conflicting re-put: fails
        (key_of(3), leaf(3)),   // idempotent re-put: lands
    ];
    let a = rpc_dht.put_many(&mixed);
    let b = mem_dht.put_many(&mixed);
    assert_eq!(a, b);
    assert!(a[0].is_ok() && a[2].is_ok());
    assert!(matches!(&a[1], Err(Error::MetadataConflict(_))));
    let keys: Vec<NodeKey> = (0..12).map(key_of).collect();
    assert_eq!(rpc_dht.get_many(&keys), mem_dht.get_many(&keys));
    assert_eq!(rpc_dht.delete_many(&keys), mem_dht.delete_many(&keys));
}

#[test]
fn conflicting_reputs_fail_identically_on_both_layouts() {
    for stripes in [1usize, 32] {
        let dht = MetaDht::with_stripes(4, 1, stripes);
        let key = NodeKey::new(BlobId::new(1), Version::new(1), Pos::new(0, 1));
        let leaf = |b: u64| {
            TreeNode::Leaf(BlockDescriptor {
                block_id: BlockId::new(b),
                providers: vec![0],
                len: 8,
            })
        };
        dht.put(key, leaf(1)).unwrap();
        let err = dht.put(key, leaf(2)).unwrap_err();
        assert!(
            matches!(err, Error::MetadataConflict(_)),
            "stripes={stripes}: {err}"
        );
        assert_eq!(dht.get(&key).unwrap(), leaf(1), "stripes={stripes}");
    }
}

// --- in-memory ≡ RPC-loopback ----------------------------------------------

const RPC_BLOCK: u64 = 64;

/// One step of a client-protocol script, replayed against both backends.
/// Offsets/lengths are drawn small enough to exercise aligned and
/// unaligned paths, holes, multi-block spans and out-of-bounds probes.
#[derive(Clone, Debug)]
enum ClientOp {
    Append { len: u16 },
    Write { offset: u16, len: u16 },
    Read { offset: u16, len: u16 },
    ReadVersion { version: u8, offset: u16, len: u16 },
    Latest,
    History,
}

fn client_ops() -> impl Strategy<Value = Vec<ClientOp>> {
    // Keep lengths non-zero except via the explicit zero-write probe below:
    // a zero-length read is legal, a zero-length write is WriteAborted.
    let op = prop_oneof![
        (1u16..200).prop_map(|len| ClientOp::Append { len }),
        (0u16..600, 1u16..200).prop_map(|(offset, len)| ClientOp::Write { offset, len }),
        (0u16..800, 0u16..300).prop_map(|(offset, len)| ClientOp::Read { offset, len }),
        (0u8..8, 0u16..400, 0u16..200).prop_map(|(version, offset, len)| ClientOp::ReadVersion {
            version,
            offset,
            len
        }),
        (0u16..1).prop_map(|_| ClientOp::Latest),
        (0u16..1).prop_map(|_| ClientOp::History),
    ];
    proptest::collection::vec(op, 1..25)
}

/// The two deployments under comparison, built once and shared by every
/// proptest case (each case runs on a fresh BLOB). The cluster must stay
/// alive as long as the RPC deployment, so both live in the same cell.
struct RpcRig {
    in_memory: Arc<BlobSeer>,
    over_rpc: Arc<BlobSeer>,
    _cluster: LoopbackCluster,
}

fn rpc_rig() -> &'static RpcRig {
    static RIG: OnceLock<RpcRig> = OnceLock::new();
    RIG.get_or_init(|| {
        let cfg = BlobSeerConfig::small_for_tests()
            .with_block_size(RPC_BLOCK)
            .with_unaligned_append_timeout(std::time::Duration::from_millis(200));
        let cluster = LoopbackCluster::boot(cfg.clone(), 4).unwrap();
        RpcRig {
            in_memory: BlobSeer::deploy(cfg, 4),
            over_rpc: cluster.deploy().unwrap(),
            _cluster: cluster,
        }
    })
}

/// Deterministic payload for op `i` of a case.
fn fill(i: usize, len: u16) -> Vec<u8> {
    vec![(i as u8).wrapping_mul(31).wrapping_add(7); len as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The same op script against the in-memory backend and the TCP
    /// loopback cluster yields identical observables: values on success
    /// and the exact `Error` variant on failure. Both deployments create
    /// blobs from the same id sequence, so even the ids agree.
    #[test]
    fn in_memory_and_rpc_loopback_agree(ops in client_ops()) {
        let rig = rpc_rig();
        let mem = rig.in_memory.client(NodeId::new(0));
        let rpc = rig.over_rpc.client(NodeId::new(0));
        let mem_blob = mem.create();
        let rpc_blob = rpc.create();
        prop_assert_eq!(mem_blob, rpc_blob, "blob id sequences must align");
        for (i, op) in ops.iter().enumerate() {
            match *op {
                ClientOp::Append { len } => {
                    let data = fill(i, len);
                    prop_assert_eq!(
                        mem.append(mem_blob, &data),
                        rpc.append(rpc_blob, &data),
                        "append diverged at step {}", i
                    );
                }
                ClientOp::Write { offset, len } => {
                    let data = fill(i, len);
                    prop_assert_eq!(
                        mem.write(mem_blob, offset as u64, &data),
                        rpc.write(rpc_blob, offset as u64, &data),
                        "write diverged at step {}", i
                    );
                }
                ClientOp::Read { offset, len } => {
                    prop_assert_eq!(
                        mem.read(mem_blob, None, offset as u64, len as u64),
                        rpc.read(rpc_blob, None, offset as u64, len as u64),
                        "read diverged at step {}", i
                    );
                }
                ClientOp::ReadVersion { version, offset, len } => {
                    let v = Some(Version::new(version as u64));
                    prop_assert_eq!(
                        mem.read(mem_blob, v, offset as u64, len as u64),
                        rpc.read(rpc_blob, v, offset as u64, len as u64),
                        "versioned read diverged at step {}", i
                    );
                }
                ClientOp::Latest => {
                    prop_assert_eq!(mem.latest(mem_blob), rpc.latest(rpc_blob));
                }
                ClientOp::History => {
                    prop_assert_eq!(mem.history(mem_blob), rpc.history(rpc_blob));
                }
            }
        }
        // Error probes at the end of every case: the exact variants must
        // cross the wire. (OutOfBounds, NoSuchBlob, NoSuchVersion,
        // WriteAborted, VersionNotRevealed.)
        let (_, size) = mem.latest(mem_blob).unwrap();
        prop_assert_eq!(
            mem.read(mem_blob, None, size, 1),
            rpc.read(rpc_blob, None, size, 1)
        );
        prop_assert_eq!(
            mem.latest(BlobId::new(u64::MAX)),
            rpc.latest(BlobId::new(u64::MAX))
        );
        prop_assert_eq!(
            mem.read(mem_blob, Some(Version::new(10_000)), 0, 1),
            rpc.read(rpc_blob, Some(Version::new(10_000)), 0, 1)
        );
        prop_assert_eq!(
            mem.write(mem_blob, 0, &[]),
            rpc.write(rpc_blob, 0, &[])
        );
        // A block-aligned stuck version: reads of it answer
        // VersionNotRevealed identically on both sides. (Block-aligned so
        // it never sends a later unaligned append into the slow path —
        // there are no later ops on these blobs.)
        let stuck_mem = rig.in_memory.version_manager()
            .assign(mem_blob, WriteIntent::Append { size: RPC_BLOCK }).unwrap();
        let stuck_rpc = rig.over_rpc.version_manager()
            .assign(rpc_blob, WriteIntent::Append { size: RPC_BLOCK }).unwrap();
        prop_assert_eq!(stuck_mem.version, stuck_rpc.version);
        prop_assert_eq!(stuck_mem.offset, stuck_rpc.offset);
        prop_assert_eq!(
            mem.read(mem_blob, Some(stuck_mem.version), 0, 1),
            rpc.read(rpc_blob, Some(stuck_rpc.version), 0, 1)
        );
        prop_assert_eq!(
            rig.in_memory.version_manager().pending_versions(mem_blob).unwrap(),
            rig.over_rpc.version_manager().pending_versions(rpc_blob).unwrap()
        );
        // Repair both so the shared deployments stay healthy for later
        // cases (fresh blobs, but keep the VM free of stuck versions).
        mem.repair_aborted(&stuck_mem).unwrap();
        rpc.repair_aborted(&stuck_rpc).unwrap();
    }

    /// Wire-codec round trips on random domain values: tree nodes, node
    /// keys, log entries, snapshot infos. Encode → decode is the identity.
    #[test]
    fn wire_codec_roundtrips_random_values(
        seeds in proptest::collection::vec((any::<u64>(), any::<u64>(), 0u8..3), 1..40)
    ) {
        use blobseer_rpc::wire;
        for &(a, b, kind) in &seeds {
            // A valid position derived from the seed: power-of-two length,
            // aligned start.
            let len = 1u64 << (a % 20);
            let start = (b % 1000) * len;
            let pos = Pos::new(start, len);
            let key = NodeKey::new(BlobId::new(a), Version::new(b), pos);
            let mut w = WireWriter::new();
            wire::put_node_key(&mut w, &key);
            let mut r = WireReader::new(w.as_slice());
            prop_assert_eq!(wire::get_node_key(&mut r).unwrap(), key);
            r.finish().unwrap();

            let node = match kind {
                0 => TreeNode::Inner {
                    left: (a % 2 == 0).then_some(NodeRef {
                        blob: BlobId::new(a),
                        version: Version::new(b),
                    }),
                    right: (b % 2 == 0).then_some(NodeRef {
                        blob: BlobId::new(b),
                        version: Version::new(a),
                    }),
                },
                1 => TreeNode::Leaf(BlockDescriptor {
                    block_id: BlockId::new(a),
                    providers: vec![(a % 7) as u32, (b % 11) as u32],
                    len: (b % (u32::MAX as u64)) as u32,
                }),
                _ => TreeNode::LeafAlias((a % 3 == 0).then_some(NodeRef {
                    blob: BlobId::new(b),
                    version: Version::new(a),
                })),
            };
            let mut w = WireWriter::new();
            wire::put_tree_node(&mut w, &node);
            let mut r = WireReader::new(w.as_slice());
            prop_assert_eq!(wire::get_tree_node(&mut r).unwrap(), node);
            r.finish().unwrap();

            let info = blobseer_core::SnapshotInfo {
                version: Version::new(a),
                size: b,
                cap: len,
                root_blob: BlobId::new(b),
                revealed: a % 2 == 0,
            };
            let mut w = WireWriter::new();
            wire::put_snapshot_info(&mut w, &info);
            let mut r = WireReader::new(w.as_slice());
            prop_assert_eq!(wire::get_snapshot_info(&mut r).unwrap(), info);
            r.finish().unwrap();
        }
    }
}

/// Every `Error` variant — the full port failure vocabulary — survives a
/// wire round trip bit-exactly, both bare and through the RPC response
/// envelope. This is the "failures propagate across the wire instead of
/// degrading to transport errors" guarantee, asserted exhaustively.
#[test]
fn every_error_variant_survives_the_wire() {
    for e in error_fixture() {
        let mut w = WireWriter::new();
        w.put_error(&e);
        let mut r = WireReader::new(w.as_slice());
        assert_eq!(r.get_error().unwrap(), e, "bare codec");
        r.finish().unwrap();

        let body = blobseer_rpc::wire::encode_response(Err(e.clone()));
        assert_eq!(
            blobseer_rpc::wire::decode_response(&body).unwrap_err(),
            e,
            "response envelope"
        );
    }
}

#[test]
fn threaded_workload_converges_to_identical_state() {
    // 8 threads hammer both layouts with the same per-thread scripts
    // (disjoint key spaces, so the interleaving cannot change outcomes);
    // both must converge to the same observable state.
    let run = |shards: usize| {
        let set = Arc::new(ProviderSet::with_shards(
            2,
            |i| NodeId::new(i as u64),
            shards,
        ));
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let set = Arc::clone(&set);
                std::thread::spawn(move || {
                    for i in 0..300u64 {
                        let id = BlockId::new(1 + t * 10_000 + i);
                        let data = Bytes::from(vec![(t ^ i) as u8; 8]);
                        let p = (i % 2) as usize;
                        BlockStore::put(&*set, p, id, data).unwrap();
                        assert_eq!(BlockStore::get(&*set, p, id).unwrap().len(), 8);
                        if i % 3 == 0 {
                            let _ = BlockStore::delete(&*set, p, id);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        (
            set.layout_vector(),
            BlockStore::total_bytes_stored(&*set),
            BlockStore::total_block_count(&*set),
        )
    };
    assert_eq!(run(1), run(32));
}

// --- hosted placement/GC ≡ in-memory ----------------------------------------

/// One step of a control-plane-heavy script: ops chosen to exercise the
/// placement allocation stream (writes), subtree sharing (branches) and
/// the GC refcount cascades (collections, deletions) — the traffic that
/// flows through the *hosted* placement and GC services of a
/// `LoopbackCluster` and through the in-memory `ProviderManager`/`GcHost`
/// of a single-process deployment.
#[derive(Clone, Debug)]
enum ControlOp {
    Create,
    Append { blob: u8, len: u16 },
    Write { blob: u8, offset: u16, len: u16 },
    Branch { blob: u8, at: u8 },
    GcBefore { blob: u8, keep_from: u8 },
    DeleteBlob { blob: u8 },
}

fn control_ops() -> impl Strategy<Value = Vec<ControlOp>> {
    let op = prop_oneof![
        (0u8..1).prop_map(|_| ControlOp::Create),
        (any::<u8>(), 1u16..200).prop_map(|(blob, len)| ControlOp::Append { blob, len }),
        (any::<u8>(), 0u16..400, 1u16..200).prop_map(|(blob, offset, len)| ControlOp::Write {
            blob,
            offset,
            len
        }),
        (any::<u8>(), 0u8..6).prop_map(|(blob, at)| ControlOp::Branch { blob, at }),
        (any::<u8>(), 0u8..6).prop_map(|(blob, keep_from)| ControlOp::GcBefore { blob, keep_from }),
        any::<u8>().prop_map(|blob| ControlOp::DeleteBlob { blob }),
    ];
    proptest::collection::vec(op, 1..30)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The hosted control plane is observationally identical to the
    /// in-memory one. Each case boots a fresh cluster (so the global
    /// placement/GC observables start from zero on both sides) and replays
    /// one script against both deployments: every op result — versions,
    /// blob ids, `GcReport`s, error variants — must agree, and afterwards
    /// the *global* control-plane state must too: per-provider load
    /// vectors, provider heartbeats, tracked refcount entries and the
    /// per-provider block layout left behind by the cascades.
    #[test]
    fn hosted_placement_and_gc_match_in_memory(ops in control_ops()) {
        let cfg = BlobSeerConfig::small_for_tests()
            .with_block_size(RPC_BLOCK)
            .with_unaligned_append_timeout(std::time::Duration::from_millis(200));
        let cluster = LoopbackCluster::boot(cfg.clone(), 4).unwrap();
        let hosted = cluster.deploy().unwrap();
        let in_mem = BlobSeer::deploy(cfg, 4);
        let mem = in_mem.client(NodeId::new(0));
        let rpc = hosted.client(NodeId::new(0));

        // Blob id sequences align (same version-manager logic on both
        // sides), so one pool indexes both deployments.
        let mut pool = vec![mem.create()];
        prop_assert_eq!(pool[0], rpc.create());
        for (i, op) in ops.iter().enumerate() {
            let pick = |sel: u8| pool[sel as usize % pool.len()];
            match *op {
                ControlOp::Create => {
                    let (a, b) = (mem.try_create(), rpc.try_create());
                    prop_assert_eq!(&a, &b, "create diverged at step {}", i);
                    if let Ok(blob) = a {
                        pool.push(blob);
                    }
                }
                ControlOp::Append { blob, len } => {
                    let blob = pick(blob);
                    let data = fill(i, len);
                    prop_assert_eq!(
                        mem.append(blob, &data),
                        rpc.append(blob, &data),
                        "append diverged at step {}", i
                    );
                }
                ControlOp::Write { blob, offset, len } => {
                    let blob = pick(blob);
                    let data = fill(i, len);
                    prop_assert_eq!(
                        mem.write(blob, offset as u64, &data),
                        rpc.write(blob, offset as u64, &data),
                        "write diverged at step {}", i
                    );
                }
                ControlOp::Branch { blob, at } => {
                    let blob = pick(blob);
                    let at = Version::new(at as u64);
                    let (a, b) = (mem.branch(blob, at), rpc.branch(blob, at));
                    prop_assert_eq!(&a, &b, "branch diverged at step {}", i);
                    if let Ok(new_blob) = a {
                        pool.push(new_blob);
                    }
                }
                ControlOp::GcBefore { blob, keep_from } => {
                    let blob = pick(blob);
                    let keep = Version::new(keep_from as u64);
                    prop_assert_eq!(
                        mem.gc_before(blob, keep),
                        rpc.gc_before(blob, keep),
                        "collection diverged at step {}", i
                    );
                }
                ControlOp::DeleteBlob { blob } => {
                    let blob = pick(blob);
                    let (a, b) = (mem.delete_blob(blob), rpc.delete_blob(blob));
                    prop_assert_eq!(&a, &b, "delete diverged at step {}", i);
                    if a.is_ok() && pool.len() > 1 {
                        pool.retain(|&x| x != blob);
                    }
                }
            }
        }

        // Global control-plane state: the hosted provider manager's load
        // table and the hosted GC tracker's refcounts converged to exactly
        // the in-memory deployment's.
        let mem_pm = in_mem.provider_manager();
        let rpc_pm = hosted.provider_manager();
        prop_assert_eq!(mem_pm.provider_count(), rpc_pm.provider_count());
        prop_assert_eq!(mem_pm.load_vector(), rpc_pm.load_vector());
        for p in 0..mem_pm.provider_count() {
            prop_assert_eq!(mem_pm.heartbeat(p), rpc_pm.heartbeat(p));
        }
        // Out-of-range probes answer the same error variant over the wire.
        prop_assert_eq!(mem_pm.heartbeat(99), rpc_pm.heartbeat(99));
        prop_assert_eq!(
            in_mem.gc_service().tracked_nodes(),
            hosted.gc_service().tracked_nodes()
        );
        // The storage the cascades left behind matches per provider.
        prop_assert_eq!(
            in_mem.providers().layout_vector(),
            hosted.providers().layout_vector()
        );
        prop_assert_eq!(
            BlockStore::total_bytes_stored(in_mem.providers()),
            BlockStore::total_bytes_stored(hosted.providers())
        );
    }
}
