// Fixture: every would-be violation carries a `lint:allow` with a reason,
// sits inside test code, or is quoted in a string/comment — the lint must
// report nothing for this file.
pub fn invariant(v: &[u32]) -> u32 {
    // lint:allow(no-unwrap): fixture invariant with a documented reason
    *v.last().unwrap()
}

pub fn same_line(v: &[u32]) -> u32 {
    *v.first().expect("non-empty") // lint:allow(no-unwrap): fixture same-line allow
}

pub fn quoted() -> &'static str {
    // The pattern below lives in a string literal, not code.
    "call .unwrap() and std::sync::Mutex and Instant::now() here"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v = vec![1u32];
        assert_eq!(*v.last().unwrap(), 1);
    }
}
