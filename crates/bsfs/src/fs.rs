//! BSFS: the BlobSeer File System — `dfs::FileSystem` over `blobseer-core`
//! (§IV, Fig. 2: "the BSFS layer enables Hadoop to use BlobSeer as a
//! storage backend through a file system interface").

use crate::namespace::{NamespaceManager, NsEntry};
use crate::stream::{BsfsInput, BsfsOutput};
use blobseer_core::{BlobClient, BlobSeer};
use blobseer_types::{Error, NodeId, Result, Version};
use dfs::api::{DfsInput, DfsOutput, FileStatus, FileSystem, FsBlockLocation};
use dfs::DfsPath;
use std::sync::Arc;

/// The cluster-wide BSFS state: one BlobSeer deployment plus the
/// centralized namespace manager. Mount per-node handles with
/// [`BsfsCluster::mount`].
pub struct BsfsCluster {
    sys: Arc<BlobSeer>,
    ns: Arc<NamespaceManager>,
}

impl BsfsCluster {
    /// Wraps a BlobSeer deployment with a fresh namespace.
    pub fn new(sys: Arc<BlobSeer>) -> Arc<Self> {
        Arc::new(Self {
            sys,
            ns: Arc::new(NamespaceManager::new()),
        })
    }

    /// A FileSystem handle for a client running on `node` (tasktrackers
    /// mount one each; the node identity feeds locality decisions).
    pub fn mount(self: &Arc<Self>, node: NodeId) -> Bsfs {
        Bsfs {
            cluster: Arc::clone(self),
            client: self.sys.client(node),
        }
    }

    /// The underlying BlobSeer deployment.
    pub fn system(&self) -> &Arc<BlobSeer> {
        &self.sys
    }

    /// The namespace manager (for interaction-count assertions).
    pub fn namespace(&self) -> &NamespaceManager {
        &self.ns
    }
}

/// A per-node BSFS handle implementing the shared FileSystem API.
#[derive(Clone)]
pub struct Bsfs {
    cluster: Arc<BsfsCluster>,
    client: BlobClient,
}

impl Bsfs {
    /// The node this handle is mounted on.
    pub fn node(&self) -> NodeId {
        self.client.node()
    }

    /// Direct access to the BlobSeer client (for version-aware extensions
    /// beyond the Hadoop API, e.g. reading old snapshots of a file).
    pub fn blob_client(&self) -> &BlobClient {
        &self.client
    }

    /// Resolves a file path to its BLOB id.
    pub fn file_blob(&self, path: &str) -> Result<blobseer_types::BlobId> {
        self.cluster.ns.lookup_file(&DfsPath::parse(path)?)
    }

    /// Opens a *pinned past version* of a file — BSFS's versioning
    /// extension (§VI-A); plain Hadoop cannot express this.
    pub fn open_version(&self, path: &str, version: Version) -> Result<Box<dyn DfsInput + '_>> {
        let blob = self.file_blob(path)?;
        let size = self.client.size(blob, version)?;
        Ok(Box::new(BsfsInput::open_version(
            self.client.clone(),
            blob,
            version,
            size,
        )))
    }

    fn status_of(&self, path: &DfsPath, entry: NsEntry) -> Result<FileStatus> {
        let len = match entry {
            NsEntry::Dir => 0,
            NsEntry::File(blob) => self.client.latest(blob)?.1,
        };
        Ok(FileStatus {
            path: path.to_string(),
            is_dir: entry == NsEntry::Dir,
            len,
            block_size: self.block_size(),
        })
    }
}

impl FileSystem for Bsfs {
    fn create(&self, path: &str, overwrite: bool) -> Result<Box<dyn DfsOutput + '_>> {
        let path = DfsPath::parse(path)?;
        let blob = self.client.create();
        let evicted = self.cluster.ns.create_file(&path, blob, overwrite)?;
        if let Some(old) = evicted {
            // Free the replaced file's storage (all of its versions).
            let _ = self.client.delete_blob(old);
        }
        Ok(Box::new(BsfsOutput::new(self.client.clone(), blob)))
    }

    fn append(&self, path: &str) -> Result<Box<dyn DfsOutput + '_>> {
        // BSFS supports appends natively (§V-F) — including concurrent
        // appends from many clients to the same file.
        let blob = self.file_blob(path)?;
        Ok(Box::new(BsfsOutput::new(self.client.clone(), blob)))
    }

    fn open(&self, path: &str) -> Result<Box<dyn DfsInput + '_>> {
        let blob = self.file_blob(path)?;
        Ok(Box::new(BsfsInput::open(self.client.clone(), blob)?))
    }

    fn exists(&self, path: &str) -> Result<bool> {
        Ok(self.cluster.ns.lookup(&DfsPath::parse(path)?).is_some())
    }

    fn status(&self, path: &str) -> Result<FileStatus> {
        let path = DfsPath::parse(path)?;
        let entry = self
            .cluster
            .ns
            .lookup(&path)
            .ok_or_else(|| Error::NotFound(path.to_string()))?;
        self.status_of(&path, entry)
    }

    fn list(&self, path: &str) -> Result<Vec<FileStatus>> {
        let path = DfsPath::parse(path)?;
        self.cluster
            .ns
            .list(&path)?
            .into_iter()
            .map(|(name, entry)| self.status_of(&path.join(&name)?, entry))
            .collect()
    }

    fn mkdirs(&self, path: &str) -> Result<()> {
        self.cluster.ns.mkdirs(&DfsPath::parse(path)?)
    }

    fn delete(&self, path: &str, recursive: bool) -> Result<()> {
        let blobs = self.cluster.ns.delete(&DfsPath::parse(path)?, recursive)?;
        for blob in blobs {
            let _ = self.client.delete_blob(blob);
        }
        Ok(())
    }

    fn rename(&self, src: &str, dst: &str) -> Result<()> {
        self.cluster
            .ns
            .rename(&DfsPath::parse(src)?, &DfsPath::parse(dst)?)
    }

    fn block_locations(&self, path: &str, offset: u64, len: u64) -> Result<Vec<FsBlockLocation>> {
        // Mapped directly onto BlobSeer's locality primitive (§IV-C).
        let blob = self.file_blob(path)?;
        let (_, size) = self.client.latest(blob)?;
        let end = (offset + len).min(size);
        if offset >= end {
            return Ok(Vec::new());
        }
        Ok(self
            .client
            .locations(blob, None, offset, end - offset)?
            .into_iter()
            .map(|l| FsBlockLocation {
                offset: l.range.offset,
                length: l.range.size,
                hosts: l.nodes,
            })
            .collect())
    }

    fn block_size(&self) -> u64 {
        self.cluster.sys.config().block_size
    }

    fn backend_name(&self) -> &'static str {
        "BSFS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_types::BlobSeerConfig;
    use dfs::util::{read_fully, write_file};

    fn cluster() -> Arc<BsfsCluster> {
        let sys = BlobSeer::deploy(BlobSeerConfig::small_for_tests().with_block_size(256), 4);
        BsfsCluster::new(sys)
    }

    #[test]
    fn conformance_suite() {
        let fs = cluster().mount(NodeId::new(0));
        dfs::conformance::run_all(&fs);
    }

    #[test]
    fn append_is_supported() {
        let fs = cluster().mount(NodeId::new(0));
        write_file(&fs, "/f", b"hello ").unwrap();
        let mut out = fs.append("/f").unwrap();
        out.write(b"world").unwrap();
        out.close().unwrap();
        assert_eq!(read_fully(&fs, "/f").unwrap(), b"hello world");
    }

    #[test]
    fn concurrent_appends_from_many_handles() {
        // The Fig. 5 access pattern at file-system level: concurrent
        // appenders to a shared file, all block-aligned.
        let cl = cluster();
        let fs0 = cl.mount(NodeId::new(0));
        write_file(&fs0, "/shared", &[0u8; 256]).unwrap();
        let mut handles = Vec::new();
        for t in 1..=4u8 {
            let fs = cl.mount(NodeId::new(t as u64));
            handles.push(std::thread::spawn(move || {
                let mut out = fs.append("/shared").unwrap();
                out.write(&vec![t; 256]).unwrap();
                out.close().unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let data = read_fully(&fs0, "/shared").unwrap();
        assert_eq!(data.len(), 5 * 256);
        let mut seen: Vec<u8> = data.chunks(256).map(|c| c[0]).collect();
        for chunk in data.chunks(256) {
            assert!(chunk.iter().all(|&b| b == chunk[0]), "torn append");
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn data_access_bypasses_namespace() {
        // §IV-A: "our implementation … only interacts with [the namespace
        // manager] for operations like file opening and file/directory
        // creation/deletion/renaming".
        let cl = cluster();
        let fs = cl.mount(NodeId::new(0));
        write_file(&fs, "/bigfile", &vec![1u8; 2048]).unwrap();
        let mut input = fs.open("/bigfile").unwrap();
        let ops_before = cl.namespace().op_count();
        let mut buf = [0u8; 64];
        for _ in 0..32 {
            input.read_exact(&mut buf).unwrap();
        }
        assert_eq!(
            cl.namespace().op_count(),
            ops_before,
            "reads must not touch the centralized namespace manager"
        );
    }

    #[test]
    fn block_locations_expose_round_robin_layout() {
        let cl = cluster();
        let fs = cl.mount(NodeId::new(0));
        write_file(&fs, "/f", &vec![1u8; 1024]).unwrap(); // 4 blocks on 4 providers
        let locs = fs.block_locations("/f", 0, 1024).unwrap();
        assert_eq!(locs.len(), 4);
        let hosts: Vec<NodeId> = locs.iter().map(|l| l.hosts[0]).collect();
        let unique: std::collections::HashSet<_> = hosts.iter().collect();
        assert_eq!(unique.len(), 4, "round-robin spreads blocks: {hosts:?}");
        // Clipped query.
        let locs = fs.block_locations("/f", 0, u64::MAX).unwrap();
        assert_eq!(locs.len(), 4);
    }

    #[test]
    fn versioned_open_reads_history() {
        let cl = cluster();
        let fs = cl.mount(NodeId::new(0));
        write_file(&fs, "/v", &[1u8; 256]).unwrap();
        write_file_append(&fs, "/v", &[2u8; 256]);
        // Latest sees both; version 1 sees only the first write.
        assert_eq!(read_fully(&fs, "/v").unwrap().len(), 512);
        let mut old = fs.open_version("/v", Version::new(1)).unwrap();
        assert_eq!(old.len(), 256);
        let mut buf = vec![0u8; 256];
        old.read_exact(&mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 1));
    }

    fn write_file_append(fs: &Bsfs, path: &str, data: &[u8]) {
        let mut out = fs.append(path).unwrap();
        out.write(data).unwrap();
        out.close().unwrap();
    }

    #[test]
    fn delete_frees_blob_storage() {
        let cl = cluster();
        let fs = cl.mount(NodeId::new(0));
        write_file(&fs, "/big", &vec![1u8; 4096]).unwrap();
        let stored_before: u64 = (0..4)
            .map(|i| cl.system().providers().bytes_stored(i))
            .sum();
        assert_eq!(stored_before, 4096);
        fs.delete("/big", false).unwrap();
        let stored_after: u64 = (0..4)
            .map(|i| cl.system().providers().bytes_stored(i))
            .sum();
        assert_eq!(stored_after, 0, "deleting the file frees provider storage");
    }

    #[test]
    fn overwrite_create_frees_old_blob() {
        let cl = cluster();
        let fs = cl.mount(NodeId::new(0));
        write_file(&fs, "/f", &vec![1u8; 1024]).unwrap();
        write_file(&fs, "/f", &vec![2u8; 256]).unwrap();
        let stored: u64 = (0..4)
            .map(|i| cl.system().providers().bytes_stored(i))
            .sum();
        assert_eq!(stored, 256, "old file's storage reclaimed on overwrite");
        assert_eq!(read_fully(&fs, "/f").unwrap(), vec![2u8; 256]);
    }
}
