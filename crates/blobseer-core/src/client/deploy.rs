//! Deployment wiring: assembling the service processes of Fig. 2 behind the
//! port traits and handing out client handles.

use crate::exec::FanoutExecutor;
use crate::gc::GcHost;
use crate::meta::tree::TreeStore;
use crate::ports::{
    BlockStore, GcService, MetaStore, NoopObserver, PlacementService, ProtocolObserver,
    VersionService,
};
use crate::provider_manager::ProviderManager;
use crate::stats::EngineStats;
use crate::version_manager::VersionManager;
use blobseer_types::config::DEFAULT_CLIENT_IO_THREADS_CAP;
use blobseer_types::{BlobSeerConfig, NodeId};
use std::sync::Arc;

use super::BlobClient;

/// The backend adapters a deployment runs on. Build one to wire custom
/// [`BlockStore`]/[`MetaStore`]/[`VersionService`] implementations (a
/// simnet-backed cost model, a fault injector, later an RPC transport) into
/// the unchanged client protocol; [`BlobSeer::deploy`] builds the in-memory
/// default.
pub struct EnginePorts {
    /// The data providers.
    pub providers: Arc<dyn BlockStore>,
    /// The metadata DHT.
    pub dht: Arc<dyn MetaStore>,
    /// The version manager.
    pub vm: Arc<dyn VersionService>,
    /// The placement service scheduling block placement (in-memory
    /// [`ProviderManager`] or a remote adapter against a hosted one). Its
    /// provider count must match `providers.len()`.
    pub pm: Arc<dyn PlacementService>,
    /// The GC service holding node refcounts and running cascades. `None`
    /// wires a deployment-private [`GcHost`] over the ports above — correct
    /// for single-process deployments; multi-process clusters must share
    /// one hosted service or refcounts of shared subtrees diverge.
    pub gc: Option<Arc<dyn GcService>>,
    /// Engine counters, shared with any decorators that want to account
    /// their own work.
    pub stats: Arc<EngineStats>,
    /// Passive observer of protocol phase boundaries
    /// ([`crate::ports::ProtocolObserver`]); [`NoopObserver`] by default.
    pub observer: Arc<dyn ProtocolObserver>,
}

impl EnginePorts {
    /// The standard in-memory adapters: lock-striped [`crate::block_store::
    /// ProviderSet`]/[`crate::dht::MetaDht`] plus a [`VersionManager`], with
    /// one data provider per entry of `provider_nodes`.
    pub fn in_memory(cfg: &BlobSeerConfig, provider_nodes: Vec<NodeId>, pm_seed: u64) -> Self {
        assert!(
            !provider_nodes.is_empty(),
            "need at least one data provider"
        );
        let stats = Arc::new(EngineStats::new());
        Self {
            providers: Arc::new(crate::block_store::ProviderSet::new(
                provider_nodes.len(),
                |i| provider_nodes[i],
            )),
            dht: Arc::new(crate::dht::MetaDht::new(
                cfg.metadata_providers,
                cfg.metadata_replication,
            )),
            vm: Arc::new(VersionManager::new(cfg.block_size, Arc::clone(&stats))),
            pm: Arc::new(ProviderManager::new(
                provider_nodes.len(),
                cfg.placement,
                pm_seed,
            )),
            gc: None,
            stats,
            observer: Arc::new(NoopObserver),
        }
    }
}

/// A BlobSeer deployment: all service processes of Fig. 2 wired together
/// behind the port traits of [`crate::ports`].
pub struct BlobSeer {
    pub(crate) cfg: BlobSeerConfig,
    pub(crate) providers: Arc<dyn BlockStore>,
    pub(crate) pm: Arc<dyn PlacementService>,
    pub(crate) dht: Arc<dyn MetaStore>,
    pub(crate) vm: Arc<dyn VersionService>,
    pub(crate) gc: Arc<dyn GcService>,
    pub(crate) stats: Arc<EngineStats>,
    pub(crate) observer: Arc<dyn ProtocolObserver>,
    pub(crate) exec: Arc<FanoutExecutor>,
}

/// Default provider-manager seed of the in-memory deployments (experiments
/// pass their own seeds through [`EnginePorts::in_memory`]).
const DEFAULT_PM_SEED: u64 = 0x5EED_0001;

impl BlobSeer {
    /// Deploys the system with `n_data_providers` in-memory data providers
    /// hosted on nodes `0..n`.
    pub fn deploy(cfg: BlobSeerConfig, n_data_providers: usize) -> Arc<Self> {
        Self::deploy_on(cfg, (0..n_data_providers as u64).map(NodeId::new).collect())
    }

    /// Deploys with one in-memory data provider per given node.
    pub fn deploy_on(cfg: BlobSeerConfig, provider_nodes: Vec<NodeId>) -> Arc<Self> {
        let ports = EnginePorts::in_memory(&cfg, provider_nodes, DEFAULT_PM_SEED);
        Self::deploy_ports(cfg, ports)
    }

    /// Deploys on explicit backend adapters — the extension point every
    /// non-default deployment goes through (see the module guide in
    /// [`crate::client`]).
    pub fn deploy_ports(cfg: BlobSeerConfig, ports: EnginePorts) -> Arc<Self> {
        assert!(
            cfg.block_size <= u32::MAX as u64,
            "block size must fit in 32 bits"
        );
        assert!(!ports.providers.is_empty(), "need at least one provider");
        assert_eq!(
            ports.pm.provider_count(),
            ports.providers.len(),
            "provider manager and block store must agree on the provider count"
        );
        // Auto-size the fan-out pool to the striping width, capped at the
        // paper's per-client width of 8; an explicit `Some(1)` keeps the
        // deployment thread-free (required under SimGate).
        let io_threads = cfg
            .client_io_threads
            .unwrap_or_else(|| ports.providers.len().min(DEFAULT_CLIENT_IO_THREADS_CAP))
            .max(1);
        let exec = Arc::new(FanoutExecutor::new(io_threads));
        // No external GC service → embed a deployment-private host over
        // the same ports (the single-process shape). Hosted clusters pass
        // a remote adapter instead so every client process shares one
        // refcount table.
        let gc = ports.gc.unwrap_or_else(|| {
            Arc::new(GcHost::new(
                Arc::clone(&ports.dht),
                Arc::clone(&ports.providers),
                Arc::clone(&ports.pm),
                Arc::clone(&ports.stats),
                Arc::clone(&exec),
            ))
        });
        Arc::new(Self {
            cfg,
            providers: ports.providers,
            pm: ports.pm,
            dht: ports.dht,
            vm: ports.vm,
            gc,
            stats: ports.stats,
            observer: ports.observer,
            exec,
        })
    }

    /// A client bound to a cluster node (the node matters for diagnostics
    /// and for locality-aware schedulers reading block locations).
    pub fn client(self: &Arc<Self>, node: NodeId) -> BlobClient {
        BlobClient {
            sys: Arc::clone(self),
            node,
        }
    }

    /// Deployment configuration.
    pub fn config(&self) -> &BlobSeerConfig {
        &self.cfg
    }

    /// Engine counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The data-provider port (for inspection in tests and experiments).
    pub fn providers(&self) -> &dyn BlockStore {
        &*self.providers
    }

    /// The metadata-store port (for inspection).
    pub fn dht(&self) -> &dyn MetaStore {
        &*self.dht
    }

    /// The version-service port (for inspection and direct protocol
    /// access).
    pub fn version_manager(&self) -> &dyn VersionService {
        &*self.vm
    }

    /// The placement-service port (the provider manager, or a remote
    /// adapter against a hosted one).
    pub fn provider_manager(&self) -> &dyn PlacementService {
        &*self.pm
    }

    /// The GC-service port (for inspection of refcounts in tests).
    pub fn gc_service(&self) -> &dyn GcService {
        &*self.gc
    }

    /// Per-provider block counts — the layout vector of Fig. 3(b).
    pub fn layout_vector(&self) -> Vec<u64> {
        self.providers.layout_vector()
    }

    /// The client-side fan-out executor dispatching per-provider batches
    /// concurrently (bsfs uses it for read-ahead prefetches).
    pub fn executor(&self) -> &FanoutExecutor {
        self.exec.as_ref()
    }

    pub(crate) fn tree(&self) -> TreeStore<'_> {
        TreeStore {
            dht: &self.dht,
            gc: &self.gc,
            stats: &self.stats,
            exec: self.exec.as_ref(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_store::ProviderSet;
    use crate::dht::MetaDht;

    #[test]
    fn custom_ports_drive_the_same_protocol() {
        // Wire the deployment by hand — the path every custom backend uses.
        let cfg = BlobSeerConfig::small_for_tests().with_block_size(64);
        let stats = Arc::new(EngineStats::new());
        let ports = EnginePorts {
            providers: Arc::new(ProviderSet::new(2, |i| NodeId::new(10 + i as u64))),
            dht: Arc::new(MetaDht::new(4, 1)),
            vm: Arc::new(VersionManager::new(64, Arc::clone(&stats))),
            pm: Arc::new(ProviderManager::new(
                2,
                blobseer_types::config::PlacementPolicy::RoundRobin,
                7,
            )),
            gc: None,
            stats,
            observer: Arc::new(NoopObserver),
        };
        let sys = BlobSeer::deploy_ports(cfg, ports);
        let c = sys.client(NodeId::new(0));
        let blob = c.create();
        c.write(blob, 0, &[5u8; 128]).unwrap();
        assert_eq!(&c.read(blob, None, 0, 128).unwrap()[..], &[5u8; 128][..]);
        assert_eq!(sys.providers().node(0), NodeId::new(10));
        assert_eq!(sys.layout_vector(), vec![1, 1]);
    }

    #[test]
    #[should_panic(expected = "must agree on the provider count")]
    fn mismatched_pm_is_rejected() {
        let cfg = BlobSeerConfig::small_for_tests();
        let mut ports = EnginePorts::in_memory(&cfg, vec![NodeId::new(0), NodeId::new(1)], 0);
        ports.pm = Arc::new(ProviderManager::new(
            5,
            blobseer_types::config::PlacementPolicy::RoundRobin,
            0,
        ));
        let _ = BlobSeer::deploy_ports(cfg, ports);
    }
}
