//! Benchmarks the figure-model simulations themselves: one Criterion
//! sample per paper figure (at a representative operating point), so
//! `cargo bench` both regenerates the figures' hot points and tracks the
//! simulator's own performance.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::{fig3a, fig3b, fig4, fig5, fig6, Backend, Constants};
use std::hint::black_box;

fn bench_fig3a(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures/fig3a_16gb");
    g.sample_size(10);
    let cst = Constants::default();
    g.bench_function("hdfs", |b| {
        b.iter(|| black_box(fig3a::throughput_mbps(&cst, Backend::Hdfs, 256, 1)))
    });
    g.bench_function("bsfs", |b| {
        b.iter(|| black_box(fig3a::throughput_mbps(&cst, Backend::Bsfs, 256, 1)))
    });
    g.finish();
}

fn bench_fig3b(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures/fig3b_16gb");
    g.sample_size(10);
    let cst = Constants::default();
    g.bench_function("both_policies", |b| {
        b.iter(|| black_box(fig3b::run(&cst, &[16.0])))
    });
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures/fig4_250_clients");
    g.sample_size(10);
    let cst = Constants::default();
    g.bench_function("hdfs", |b| {
        b.iter(|| black_box(fig4::avg_client_mbps(&cst, Backend::Hdfs, 250, 1)))
    });
    g.bench_function("bsfs", |b| {
        b.iter(|| black_box(fig4::avg_client_mbps(&cst, Backend::Bsfs, 250, 1)))
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures/fig5_250_appenders");
    g.sample_size(10);
    let cst = Constants::default();
    g.bench_function("bsfs", |b| {
        b.iter(|| black_box(fig5::aggregated_mbps(&cst, fig5::OpMode::Append, 250)))
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures/fig6");
    g.sample_size(10);
    let cst = Constants::default();
    g.bench_function("rtw_50_mappers", |b| {
        b.iter(|| {
            black_box(fig6::rtw_job_secs(&cst, Backend::Hdfs, 50, 6_871_947_674));
            black_box(fig6::rtw_job_secs(&cst, Backend::Bsfs, 50, 6_871_947_674));
        })
    });
    g.bench_function("grep_200_chunks", |b| {
        b.iter(|| {
            black_box(fig6::grep_job(&cst, Backend::Hdfs, 200, 1));
            black_box(fig6::grep_job(&cst, Backend::Bsfs, 200, 1));
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig3a,
    bench_fig3b,
    bench_fig4,
    bench_fig5,
    bench_fig6
);
criterion_main!(benches);
