//! `blobseer-core` — a from-scratch Rust implementation of **BlobSeer**, the
//! versioned BLOB management service of Nicolae et al., *"BlobSeer: Bringing
//! High Throughput under Heavy Concurrency to Hadoop Map-Reduce
//! Applications"*, IPDPS 2010.
//!
//! BLOBs are huge, flat, versioned byte sequences accessed at fine grain
//! under heavy concurrency. The design combines four techniques (§III-A):
//!
//! 1. **Data striping** — BLOBs split into fixed-size blocks spread over
//!    data providers by a load-balancing placement policy
//!    ([`provider_manager`], [`placement`], [`block_store`]).
//! 2. **Distributed metadata** — per-version segment trees whose nodes live
//!    in a DHT over metadata providers, with subtree sharing across versions
//!    ([`meta`], [`dht`]).
//! 3. **Versioning** — every write/append produces a new snapshot storing
//!    only the differential patch; all past versions stay readable, can be
//!    branched in O(1) and garbage-collected ([`version_manager`], [`gc`]).
//! 4. **Lock-free, version-based concurrency control** — data and metadata
//!    are never mutated; writers serialize *only* on version-number
//!    assignment; snapshots are revealed in version order, which yields
//!    linearizability ([`version_manager`], [`client`]).
//!
//! # Quick start
//!
//! ```
//! use blobseer_core::BlobSeer;
//! use blobseer_types::{BlobSeerConfig, NodeId};
//!
//! // 8 data providers, 4 KB blocks (tests use small blocks; the paper and
//! // the benches use 64 MB, Hadoop's chunk size).
//! let system = BlobSeer::deploy(BlobSeerConfig::small_for_tests(), 8);
//! let client = system.client(NodeId::new(0));
//!
//! let blob = client.create();
//! let (offset, v1) = client.append(blob, b"hello ").unwrap();
//! assert_eq!(offset, 0);
//! let (offset, v2) = client.append(blob, b"world").unwrap();
//! assert_eq!(offset, 6);
//!
//! // Every version stays readable:
//! assert_eq!(&client.read(blob, Some(v1), 0, 6).unwrap()[..], b"hello ");
//! assert_eq!(&client.read(blob, Some(v2), 0, 11).unwrap()[..], b"hello world");
//! ```
#![forbid(unsafe_code)]

pub mod block_store;
pub mod cache;
pub mod client;
pub mod dht;
pub mod exec;
pub mod faults;
pub mod gc;
pub mod meta;
pub mod placement;
pub mod ports;
pub mod provider_manager;
pub mod sharded;
pub mod stats;
pub mod version_manager;

pub use cache::{CachedBlockStore, CachedMetaStore};
pub use client::{BlobClient, BlobSeer, BlockLocation, EnginePorts};
pub use exec::{FanoutExecutor, Pending};
pub use faults::{FaultPlan, FaultyBlockStore, FaultyMetaStore, PutFault};
pub use gc::{GcHost, GcReport, GcTracker};
pub use placement::{manhattan_unbalance, Placer};
pub use ports::{
    BlockStore, GcService, MetaStore, NoopObserver, PlacementService, ProtocolObserver, ProtocolOp,
    ProtocolPhase, VersionService,
};
pub use provider_manager::{BlockAllocation, ProviderManager};
pub use sharded::ShardedMap;
pub use stats::{EngineStats, StatsSnapshot};
pub use version_manager::{SnapshotInfo, VersionManager, WriteIntent, WriteTicket};
