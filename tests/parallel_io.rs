//! The parallel data path, end to end: client-side fan-out must change
//! *when* I/O happens (overlapped, not serialized) without changing any
//! observable byte, any failure-atomicity guarantee, or any simulated
//! clock. Each test pins one face of that contract:
//!
//! * fan-out vs. serial deployments are byte- and counter-identical;
//! * a mid-fan-out put failure still undoes the whole allocation;
//! * the RPC servers *structurally* observe overlapping requests
//!   (in-flight high watermark > 1) only under fan-out;
//! * read-ahead streams deliver the pinned snapshot byte-for-byte even
//!   while writers append concurrently;
//! * replica failover retries are batched and counted;
//! * SimGate runs stay deterministic under the overlap charging model.

use blobseer_core::faults::{FaultPlan, FaultyBlockStore, PutFault};
use blobseer_core::ports::BlockStore;
use blobseer_core::{BlobClient, BlobSeer, EnginePorts};
use blobseer_rpc::LoopbackCluster;
use blobseer_types::config::PlacementPolicy;
use blobseer_types::{BlobSeerConfig, BlockId, Error, NodeId, Result};
use bsfs::BsfsInput;
use bytes::Bytes;
use dfs::api::DfsInput;
use experiments::concurrent::{self, ClientTask};
use experiments::Constants;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

const BLOCK: u64 = 64;

fn cfg_with_threads(threads: usize) -> BlobSeerConfig {
    BlobSeerConfig::small_for_tests()
        .with_block_size(BLOCK)
        .with_client_io_threads(threads)
}

fn deploy_in_memory(threads: usize, seed: u64) -> std::sync::Arc<BlobSeer> {
    let cfg = cfg_with_threads(threads);
    let ports = EnginePorts::in_memory(&cfg, (0..4).map(NodeId::new).collect(), seed);
    BlobSeer::deploy_ports(cfg, ports)
}

/// A deployment with one executor thread and one with eight must produce
/// the same bytes *and* the same fan-out accounting: the executor changes
/// when I/O happens, never what is stored, read, or counted.
#[test]
fn fanout_and_serial_deployments_are_byte_and_counter_identical() {
    let payload: Vec<u8> = (0..64 * BLOCK).map(|i| (i % 251) as u8).collect();
    let run = |threads: usize| {
        let sys = deploy_in_memory(threads, 0xFA_0001);
        let client = sys.client(NodeId::new(0));
        let blob = client.create();
        client.write(blob, 0, &payload).unwrap();
        let data = client.read(blob, None, 0, payload.len() as u64).unwrap();
        let snap = sys.stats().snapshot();
        (
            data,
            snap.fanout_batches,
            snap.fanout_max_width,
            snap.read_replica_fallbacks,
        )
    };
    let (serial, serial_batches, serial_width, serial_fallbacks) = run(1);
    let (fanned, fanned_batches, fanned_width, fanned_fallbacks) = run(8);
    assert_eq!(&serial[..], &payload[..], "serial read corrupted");
    assert_eq!(&fanned[..], &serial[..], "fan-out changed the bytes");
    // The dispatch structure is deterministic: same batches, same widths,
    // whether they ran inline or on eight threads.
    assert_eq!(fanned_batches, serial_batches);
    assert_eq!(fanned_width, serial_width);
    assert_eq!(fanned_width, 4, "data phase fans out across 4 providers");
    assert_eq!((serial_fallbacks, fanned_fallbacks), (0, 0));
}

/// One provider refusing one put mid-fan-out must abort the write *and*
/// undo every block the other concurrently-running batches already
/// stored — whole-allocation undo, not per-batch (§VI-B: failed writers
/// leave no partial allocation behind).
#[test]
fn failed_put_mid_fanout_undoes_the_whole_allocation() {
    let cfg = cfg_with_threads(4);
    let base = EnginePorts::in_memory(&cfg, (0..4).map(NodeId::new).collect(), 0xFA_0002);
    let plan = FaultPlan::new();
    let store = Arc::new(FaultyBlockStore::new(
        Arc::clone(&base.providers),
        Arc::clone(&plan),
    ));
    let ports = EnginePorts {
        providers: Arc::clone(&store) as Arc<dyn BlockStore>,
        ..base
    };
    let sys = BlobSeer::deploy_ports(cfg, ports);
    let client = sys.client(NodeId::new(0));
    let blob = client.create();

    plan.set(PutFault::FailOnce);
    let err = client
        .write(blob, 0, &vec![7u8; (16 * BLOCK) as usize])
        .unwrap_err();
    assert!(matches!(err, Error::WriteAborted(_)), "{err}");
    assert!(plan.counters().1 >= 1, "the injected fault fired");
    for provider in 0..store.len() {
        assert_eq!(
            store.block_count(provider),
            0,
            "provider {provider} kept blocks from the aborted allocation"
        );
        assert_eq!(store.bytes_stored(provider), 0);
    }

    // The deployment is healthy afterwards: the next write lands in full.
    let payload = vec![9u8; (16 * BLOCK) as usize];
    client.write(blob, 0, &payload).unwrap();
    let data = client.read(blob, None, 0, payload.len() as u64).unwrap();
    assert_eq!(&data[..], &payload[..]);
}

/// Structural proof of overlap: with eight executor threads the cluster's
/// servers must observe more than one request in flight at once; with one
/// thread (a serial client) the watermark cannot exceed one.
#[test]
fn rpc_in_flight_watermark_exceeds_one_only_under_fanout() {
    let payload = vec![3u8; (32 * BLOCK) as usize];

    let serial = LoopbackCluster::boot(cfg_with_threads(1), 8).unwrap();
    let sys = serial.deploy().unwrap();
    let client = sys.client(NodeId::new(100));
    let blob = client.create();
    client.write(blob, 0, &payload).unwrap();
    client.read(blob, None, 0, payload.len() as u64).unwrap();
    assert_eq!(
        serial.in_flight_high_watermark(),
        1,
        "a serial client can never overlap its own requests"
    );

    let fanned = LoopbackCluster::boot(cfg_with_threads(8), 8).unwrap();
    let sys = fanned.deploy().unwrap();
    let client = sys.client(NodeId::new(100));
    let blob = client.create();
    // Overlap is a scheduling fact, not a protocol guarantee per call:
    // retry a few writes until the watermark proves it happened.
    for i in 0..20 {
        client
            .write(blob, i * payload.len() as u64, &payload)
            .unwrap();
        client.read(blob, None, 0, payload.len() as u64).unwrap();
        if fanned.in_flight_high_watermark() >= 2 {
            break;
        }
    }
    assert!(
        fanned.in_flight_high_watermark() >= 2,
        "8-wide fan-out never produced overlapping in-flight requests \
         (watermark {})",
        fanned.in_flight_high_watermark()
    );
}

/// A read-ahead stream reads a *pinned* snapshot: even with a writer
/// appending concurrently, the delivered bytes equal the plain
/// (non-read-ahead) read of that snapshot — and arrive in fewer fetches.
#[test]
fn readahead_stream_matches_pinned_snapshot_under_concurrent_appends() {
    let cfg = cfg_with_threads(4).with_readahead_bytes(4 * BLOCK);
    let ports = EnginePorts::in_memory(&cfg, (0..4).map(NodeId::new).collect(), 0xFA_0003);
    let sys = BlobSeer::deploy_ports(cfg, ports);
    let client = sys.client(NodeId::new(0));
    let blob = client.create();
    let payload: Vec<u8> = (0..32 * BLOCK).map(|i| (i % 239) as u8).collect();
    client.write(blob, 0, &payload).unwrap();

    let mut input = BsfsInput::open(client.clone(), blob).unwrap();
    let pinned = input.version();
    std::thread::scope(|scope| {
        // A concurrent appender racing the stream: the pinned version
        // must shield every delivered byte from it.
        let appender = client.clone();
        scope.spawn(move || {
            for i in 0..8u8 {
                appender
                    .append(blob, &[0xA0 | (i & 0x0F); BLOCK as usize])
                    .unwrap();
            }
        });
        let mut streamed = Vec::new();
        let mut buf = [0u8; 113]; // deliberately misaligned chunks
        loop {
            let n = input.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            streamed.extend_from_slice(&buf[..n]);
        }
        assert_eq!(
            &streamed[..],
            &payload[..],
            "read-ahead leaked appended bytes"
        );
    });
    let plain = client
        .read(blob, Some(pinned), 0, payload.len() as u64)
        .unwrap();
    assert_eq!(&plain[..], &payload[..]);
    assert!(
        input.fetch_count() < 32,
        "read-ahead should batch fetches below one per block, got {}",
        input.fetch_count()
    );
}

/// A [`BlockStore`] decorator that fails the next vectored get wholesale —
/// the shape of a provider crashing between locate and fetch.
struct FailNextGet {
    inner: Arc<dyn BlockStore>,
    armed: AtomicBool,
}

impl BlockStore for FailNextGet {
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn node(&self, provider: usize) -> NodeId {
        self.inner.node(provider)
    }
    fn index_of_node(&self, node: NodeId) -> Option<usize> {
        self.inner.index_of_node(node)
    }
    fn put(&self, provider: usize, id: BlockId, data: Bytes) -> Result<()> {
        self.inner.put(provider, id, data)
    }
    fn get(&self, provider: usize, id: BlockId) -> Result<Bytes> {
        self.inner.get(provider, id)
    }
    fn get_many(&self, provider: usize, ids: &[BlockId]) -> Vec<Result<Bytes>> {
        if self.armed.swap(false, Ordering::SeqCst) {
            return ids
                .iter()
                .map(|&id| Err(Error::MissingBlock(id.raw())))
                .collect();
        }
        self.inner.get_many(provider, ids)
    }
    fn contains(&self, provider: usize, id: BlockId) -> bool {
        self.inner.contains(provider, id)
    }
    fn delete(&self, provider: usize, id: BlockId) -> Result<u64> {
        self.inner.delete(provider, id)
    }
    fn block_count(&self, provider: usize) -> usize {
        self.inner.block_count(provider)
    }
    fn bytes_stored(&self, provider: usize) -> u64 {
        self.inner.bytes_stored(provider)
    }
    fn op_counts(&self, provider: usize) -> (u64, u64) {
        self.inner.op_counts(provider)
    }
}

/// When the deterministically chosen replica refuses a batch, the read
/// fails over to the surviving replicas — batched, counted, and invisible
/// to the caller.
#[test]
fn replica_fallback_is_batched_and_counted() {
    let cfg = BlobSeerConfig {
        replication: 2,
        ..cfg_with_threads(4)
    };
    let base = EnginePorts::in_memory(&cfg, (0..4).map(NodeId::new).collect(), 0xFA_0004);
    let store = Arc::new(FailNextGet {
        inner: Arc::clone(&base.providers),
        armed: AtomicBool::new(false),
    });
    let ports = EnginePorts {
        providers: Arc::clone(&store) as Arc<dyn BlockStore>,
        ..base
    };
    let sys = BlobSeer::deploy_ports(cfg, ports);
    let client = sys.client(NodeId::new(0));
    let blob = client.create();
    let payload: Vec<u8> = (0..4 * BLOCK).map(|i| (i % 101) as u8).collect();
    client.write(blob, 0, &payload).unwrap();
    assert_eq!(sys.stats().snapshot().read_replica_fallbacks, 0);

    store.armed.store(true, Ordering::SeqCst);
    let data = client.read(blob, None, 0, payload.len() as u64).unwrap();
    assert_eq!(&data[..], &payload[..], "failover changed the bytes");
    assert!(
        sys.stats().snapshot().read_replica_fallbacks >= 1,
        "the failed primary batch must be retried against replicas"
    );
}

/// Same seed, same interleaving, same clocks — the overlap charging model
/// (per-phase `overhead + max(batch times)`) must keep SimGate runs fully
/// deterministic.
#[test]
fn simgate_runs_stay_deterministic_under_overlap_charging() {
    const SIM_BLOCK: u64 = 256;
    let run = |seed: u64| {
        let dep = concurrent::deploy(
            &Constants::default(),
            8,
            8,
            PlacementPolicy::RoundRobin,
            seed,
            SIM_BLOCK,
        );
        let boot = dep.sys.client(NodeId::new(0));
        let blob = boot.create();
        dep.set_charging(true);
        let ends = Mutex::new(Vec::new());
        let clients: Vec<ClientTask<'_>> = (0..8u64)
            .map(|i| {
                let (ends, fabric) = (&ends, &dep.fabric);
                (
                    NodeId::new(i),
                    Box::new(move |cl: BlobClient| {
                        let (offset, v) = cl.append(blob, &[i as u8; SIM_BLOCK as usize]).unwrap();
                        let data = cl.read(blob, Some(v), offset, SIM_BLOCK).unwrap();
                        assert!(data.iter().all(|&b| b == i as u8));
                        ends.lock()
                            .unwrap()
                            .push((i, fabric.gate().now().as_nanos()));
                    }) as Box<dyn FnOnce(BlobClient) + Send>,
                )
            })
            .collect();
        dep.run_clients(clients);
        let mut ends = ends.into_inner().unwrap();
        ends.sort_unstable();
        (ends, dep.now().as_nanos())
    };
    assert_eq!(run(11), run(11), "overlap charging broke determinism");
    assert_ne!(run(11).1, 0, "charging actually advanced the clock");
}
