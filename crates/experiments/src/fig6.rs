//! Fig. 6: Map/Reduce application benchmarks (§V-G).
//!
//! * **Fig. 6(a) — RandomTextWriter**: M mappers (co-deployed with storage
//!   on 50 nodes) each generate `6.4 GB / M` of random text and write it
//!   to their own output file. The **BSFS leg is the real protocol**: each
//!   mapper is a simulated client thread ([`crate::concurrent`]) whose
//!   64 MB cache flushes are genuine `BlobClient::append` calls — provider
//!   allocation, version assignment and segment-tree publish all run live,
//!   with the shared version manager's O(1) work per append emerging from
//!   the code. HDFS writes locally (its co-located policy) but pays the
//!   0.20 chunk pipeline and the namenode's synchronously-fsynced,
//!   O(block-list) edit log — which *all mappers share*; that leg stays a
//!   cost model over [`crate::concurrent::BaselineWorld`] (HDFS has no
//!   `BlobClient`).
//! * **Fig. 6(b) — distributed grep**: a shared input file of 6.4→12.8 GB
//!   (100→200 chunks) is scanned by one mapper per chunk on 150
//!   co-deployed nodes. Tasktracker slots are simulated threads sharing
//!   one scheduling loop (at most one new task per tracker per 3-second
//!   heartbeat, data-local tasks preferred — 0.20's greedy scheduler); the
//!   BSFS leg's chunk locations come from the real
//!   `BlobClient::locations` and its chunk reads are real
//!   `BlobClient::read` calls, so locality and fetch costs emerge from the
//!   live layout; HDFS's sticky layout concentrates chunks on hot
//!   datanodes whose disks and NICs become stragglers served remotely.
//!
//! Completion time = storage/compute makespan + fixed job overhead (setup
//! and cleanup tasks) + (grep only) the small reduce phase.

use crate::concurrent::{self, BaselineWorld, ClientTask};
use crate::constants::Constants;
use crate::fig3b::policy_for;
use crate::report::{Figure, Series};
use crate::topology::Backend;
use blobseer_core::placement::Placer;
use blobseer_core::BlobClient;
use blobseer_types::config::PlacementPolicy;
use blobseer_types::NodeId;
use parking_lot::Mutex;
use simnet::{SimDuration, SimGate, SimTask, SimTime};

/// Nodes in the RandomTextWriter deployment (§V-G: 50 machines).
pub const RTW_NODES: usize = 50;
/// Nodes in the grep deployment (§V-G: 150 machines).
pub const GREP_NODES: usize = 150;
/// Map slots per tasktracker (Hadoop default).
const SLOTS: usize = 2;
/// Metadata providers in the RTW deployment (§V-G: 10).
const RTW_META_SHARDS: usize = 10;
/// Real engine bytes behind each modeled 64 MB chunk.
const REAL_CHUNK: u64 = 256;

/// Heartbeat-staggered dispatch offset of mapper `m`.
fn stagger(m: usize, heartbeat: SimDuration) -> SimDuration {
    SimDuration::from_millis((m as u64 * 137) % heartbeat.as_millis())
}

// ---------------------------------------------------------------------------
// Fig. 6(a): RandomTextWriter
// ---------------------------------------------------------------------------

/// Simulates one RandomTextWriter job; returns completion time in seconds.
pub fn rtw_job_secs(c: &Constants, backend: Backend, mappers: usize, total_bytes: u64) -> f64 {
    assert!((1..=RTW_NODES).contains(&mappers));
    let chunks = ((total_bytes / mappers as u64) as f64 / c.block_bytes as f64)
        .round()
        .max(1.0) as usize;
    let gen = SimDuration::from_secs_f64(c.block_bytes as f64 / c.textgen_bps);
    let done: Mutex<Vec<Option<SimTime>>> = Mutex::new(vec![None; mappers]);
    match backend {
        Backend::Bsfs => {
            // §V-G deploys 10 metadata providers for this benchmark.
            let mut cb = c.clone();
            cb.meta_shards = RTW_META_SHARDS;
            let dep = concurrent::deploy(
                &cb,
                RTW_NODES,
                RTW_NODES,
                PlacementPolicy::RoundRobin,
                0xF166A,
                REAL_CHUNK,
            );
            dep.set_charging(true);
            let clients: Vec<ClientTask<'_>> = (0..mappers)
                .map(|m| {
                    let (done, fabric) = (&done, &dep.fabric);
                    (
                        NodeId::new(m as u64),
                        Box::new(move |cl: BlobClient| {
                            let gate = fabric.gate();
                            gate.sleep(stagger(m, cb.heartbeat) + cb.task_overhead);
                            let blob = cl.create();
                            let payload = vec![m as u8; REAL_CHUNK as usize];
                            for _ in 0..chunks {
                                // Generate the chunk's text, then flush the
                                // 64 MB write-behind cache: a real append.
                                gate.sleep(gen);
                                cl.append(blob, &payload).unwrap();
                            }
                            done.lock()[m] = Some(gate.now());
                        }) as Box<dyn FnOnce(BlobClient) + Send>,
                    )
                })
                .collect();
            dep.run_clients(clients);
        }
        Backend::Hdfs => {
            let w = BaselineWorld::new(c, RTW_NODES);
            let tasks: Vec<SimTask<'_>> = (0..mappers)
                .map(|m| {
                    let (w, done) = (&w, &done);
                    Box::new(move || {
                        let c = w.constants();
                        w.gate.sleep(stagger(m, c.heartbeat) + c.task_overhead);
                        for k in 0..chunks as u64 {
                            w.gate.sleep(gen);
                            // Local-first placement: the mapper's own
                            // datanode. The namenode allocation — shared by
                            // every mapper — fsyncs an edit-log record
                            // containing the file's whole block list.
                            let svc = c.nn_svc
                                + c.nn_editlog_fsync
                                + SimDuration::from_nanos(c.nn_blocklist_per_chunk.as_nanos() * k);
                            w.central_call(svc);
                            w.gate.sleep(c.hdfs_chunk_overhead_local);
                            w.write_block_local(m);
                        }
                        done.lock()[m] = Some(w.gate.now());
                    }) as SimTask<'_>
                })
                .collect();
            w.gate.run(tasks);
        }
    }
    let makespan = done
        .into_inner()
        .iter()
        .map(|d| d.expect("mapper finished"))
        .max()
        .expect("at least one mapper");
    (makespan + c.job_overhead).as_secs_f64()
}

/// Reproduces Fig. 6(a): job completion time vs data generated per mapper
/// (total fixed at 6.4 GB).
pub fn run_rtw(c: &Constants, mapper_counts: &[usize]) -> Figure {
    let total: u64 = 6_871_947_674; // 6.4 GB
    let mut fig = Figure::new(
        "Fig. 6(a)",
        "RandomTextWriter: job completion time, 6.4 GB total output",
        "data per mapper (GB)",
        "job completion time (s)",
    );
    for backend in [Backend::Hdfs, Backend::Bsfs] {
        let mut series = Series::new(backend.label());
        let mut points: Vec<(f64, f64)> = mapper_counts
            .iter()
            .map(|&m| {
                let per_mapper_gb = 6.4 / m as f64;
                (per_mapper_gb, rtw_job_secs(c, backend, m, total))
            })
            .collect();
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        series.points = points;
        fig.series.push(series);
    }
    fig
}

/// The paper's sweep: 50 mappers (128 MB each) → 1 mapper (6.4 GB).
pub fn rtw_paper_mappers() -> Vec<usize> {
    vec![50, 25, 10, 5, 2, 1]
}

// ---------------------------------------------------------------------------
// Fig. 6(b): distributed grep
// ---------------------------------------------------------------------------

/// Shared job state of one grep run: the task board every tasktracker
/// slot claims from.
struct GrepJob {
    state: Mutex<GrepState>,
}

struct GrepState {
    /// Input-chunk host (storage-node index) per task.
    task_host: Vec<usize>,
    /// Tasks not yet assigned to a tracker.
    pending: Vec<bool>,
    unassigned: usize,
    /// Nominal beat instant of each tracker's last assignment: 0.20 hands
    /// out at most one new task per tracker per heartbeat.
    last_claim: Vec<Option<SimTime>>,
    remaining: usize,
    local_maps: usize,
    maps_done_at: Option<SimTime>,
}

/// Scrambled heartbeat phase of a tracker: real tasktrackers do not beat
/// in node-id order, and ordered phases would let idle trackers steal
/// every local task just before its owner's first heartbeat.
fn grep_phase(tracker: usize, c: &Constants) -> SimDuration {
    SimDuration::from_millis(
        ((tracker as u64 * 7919) % GREP_NODES as u64) * c.heartbeat.as_millis() / GREP_NODES as u64,
    )
}

/// One tasktracker slot: wakes at its tracker's heartbeats, claims at most
/// one pending task per tracker per beat (data-local preferred, greedy —
/// no delay scheduling), runs it via `io`, repeats until no task is left.
fn grep_slot_loop(
    gate: &SimGate,
    c: &Constants,
    job: &GrepJob,
    tracker: usize,
    mut io: impl FnMut(usize),
) {
    let origin = SimTime::ZERO + grep_phase(tracker, c);
    let hb = c.heartbeat;
    let mut next_beat = origin;
    loop {
        gate.sleep_until(next_beat);
        let claimed = {
            let mut st = job.state.lock();
            if st.unassigned == 0 {
                break;
            }
            if st.last_claim[tracker] == Some(next_beat) {
                None // the sibling slot already took this beat's task
            } else {
                let local =
                    (0..st.pending.len()).find(|&t| st.pending[t] && st.task_host[t] == tracker);
                let pick = local.or_else(|| (0..st.pending.len()).find(|&t| st.pending[t]));
                if let Some(task) = pick {
                    st.pending[task] = false;
                    st.unassigned -= 1;
                    st.last_claim[tracker] = Some(next_beat);
                    if local.is_some() {
                        st.local_maps += 1;
                    }
                    Some(task)
                } else {
                    None
                }
            }
        };
        if let Some(task) = claimed {
            // JVM spawn + task init, then the task's open/fetch/scan.
            gate.sleep(c.task_overhead);
            io(task);
            let mut st = job.state.lock();
            st.remaining -= 1;
            if st.remaining == 0 {
                st.maps_done_at = Some(gate.now());
            }
        }
        // Next nominal beat strictly after now.
        let elapsed = (gate.now() - origin).as_nanos();
        let k = elapsed / hb.as_nanos() + 1;
        next_beat = origin + SimDuration::from_nanos(k * hb.as_nanos());
    }
}

impl GrepJob {
    fn new(task_host: Vec<usize>) -> Self {
        let n = task_host.len();
        Self {
            state: Mutex::new(GrepState {
                task_host,
                pending: vec![true; n],
                unassigned: n,
                last_claim: vec![None; GREP_NODES],
                remaining: n,
                local_maps: 0,
                maps_done_at: None,
            }),
        }
    }

    fn outcome(self, c: &Constants, n_chunks: usize) -> GrepOutcome {
        let st = self.state.into_inner();
        let maps_done = st.maps_done_at.expect("all maps finished");
        let total = maps_done + c.reduce_phase + c.job_overhead;
        GrepOutcome {
            secs: total.as_secs_f64(),
            locality: st.local_maps as f64 / n_chunks as f64,
        }
    }
}

/// Outcome of one grep job simulation.
#[derive(Clone, Copy, Debug)]
pub struct GrepOutcome {
    /// Completion time in seconds (maps + reduce + job overhead).
    pub secs: f64,
    /// Fraction of maps that were data-local.
    pub locality: f64,
}

/// Simulates one distributed-grep job over `n_chunks` input chunks.
pub fn grep_job(c: &Constants, backend: Backend, n_chunks: usize, seed: u64) -> GrepOutcome {
    let scan = SimDuration::from_secs_f64(c.block_bytes as f64 / c.grep_scan_bps);
    match backend {
        Backend::Bsfs => {
            let dep = concurrent::deploy(
                c,
                GREP_NODES,
                GREP_NODES,
                policy_for(c, Backend::Bsfs),
                seed,
                REAL_CHUNK,
            );
            // Boot the shared input file (uncharged); its layout — and
            // therefore task locality — comes from the live engine.
            let boot = dep.sys.client(NodeId::new(0));
            let blob = boot.create();
            let payload = vec![3u8; REAL_CHUNK as usize];
            for _ in 0..n_chunks {
                boot.append(blob, &payload).unwrap();
            }
            let task_host: Vec<usize> = boot
                .locations(blob, None, 0, n_chunks as u64 * REAL_CHUNK)
                .unwrap()
                .iter()
                .map(|l| l.nodes[0].raw() as usize)
                .collect();
            let job = GrepJob::new(task_host);
            dep.set_charging(true);
            let mut clients: Vec<ClientTask<'_>> = Vec::with_capacity(GREP_NODES * SLOTS);
            for tracker in 0..GREP_NODES {
                for _slot in 0..SLOTS {
                    let (job, fabric) = (&job, &dep.fabric);
                    clients.push((
                        NodeId::new(tracker as u64),
                        Box::new(move |cl: BlobClient| {
                            grep_slot_loop(fabric.gate(), c, job, tracker, |task| {
                                // Open + descent + fetch: the real read
                                // path (local when the chunk lives on this
                                // tracker's node), then the regex scan.
                                cl.read(blob, None, task as u64 * REAL_CHUNK, REAL_CHUNK)
                                    .unwrap();
                                fabric.gate().sleep(scan);
                            });
                        }) as Box<dyn FnOnce(BlobClient) + Send>,
                    ));
                }
            }
            dep.run_clients(clients);
            job.outcome(c, n_chunks)
        }
        Backend::Hdfs => {
            // Input layout: the boot file was written from a non-colocated
            // client (§V-G), so HDFS spreads it sticky-randomly.
            let mut placer = Placer::new(policy_for(c, Backend::Hdfs), seed);
            let loads = vec![0u64; GREP_NODES];
            let task_host: Vec<usize> = (0..n_chunks).map(|_| placer.pick(&loads, &[])).collect();
            let job = GrepJob::new(task_host.clone());
            let w = BaselineWorld::new(c, GREP_NODES);
            let mut tasks: Vec<SimTask<'_>> = Vec::with_capacity(GREP_NODES * SLOTS);
            for tracker in 0..GREP_NODES {
                for _slot in 0..SLOTS {
                    let (w, job, task_host) = (&w, &job, &task_host);
                    tasks.push(Box::new(move || {
                        grep_slot_loop(&w.gate, c, job, tracker, |task| {
                            // Namenode locations query, then the chunk
                            // fetch (remote over the network when the
                            // sticky layout put it elsewhere), then the
                            // scan.
                            w.central_call(c.nn_svc);
                            w.fetch_block(
                                task_host[task],
                                NodeId::new(tracker as u64),
                                SimDuration::ZERO,
                            );
                            w.gate.sleep(scan);
                        });
                    }) as SimTask<'_>);
                }
            }
            w.gate.run(tasks);
            job.outcome(c, n_chunks)
        }
    }
}

/// Reproduces Fig. 6(b): grep job completion time vs input size (GB).
pub fn run_grep(c: &Constants, sizes_gb: &[f64]) -> Figure {
    let mut fig = Figure::new(
        "Fig. 6(b)",
        "Distributed grep: job completion time vs input size",
        "total text size to be searched (GB)",
        "job completion time (s)",
    );
    for backend in [Backend::Hdfs, Backend::Bsfs] {
        let mut series = Series::new(backend.label());
        for &gb in sizes_gb {
            let n_chunks =
                ((gb * 1024.0 * 1024.0 * 1024.0) / c.block_bytes as f64).round() as usize;
            let mean = (0..crate::fig3b::REPETITIONS)
                .map(|rep| grep_job(c, backend, n_chunks, 0xF166B + rep).secs)
                .sum::<f64>()
                / crate::fig3b::REPETITIONS as f64;
            series.push(gb, mean);
        }
        fig.series.push(series);
    }
    fig
}

/// The paper's grep x grid: 6.4 → 12.8 GB in 1.6 GB increments.
pub fn grep_paper_sizes() -> Vec<f64> {
    vec![6.4, 8.0, 9.6, 11.2, 12.8]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtw_bsfs_beats_hdfs_with_growing_gain() {
        let c = Constants::default();
        let total = 6_871_947_674u64;
        let gain = |m: usize| {
            let h = rtw_job_secs(&c, Backend::Hdfs, m, total);
            let b = rtw_job_secs(&c, Backend::Bsfs, m, total);
            (h - b) / h
        };
        let g50 = gain(50);
        let g1 = gain(1);
        // Paper: 7 % at 50 mappers → 11 % at 1 mapper.
        assert!(g50 > 0.02, "BSFS must win at 50 mappers: gain {g50:.3}");
        assert!(g1 > 0.06, "BSFS must win clearly at 1 mapper: gain {g1:.3}");
        assert!(
            g1 > g50,
            "gain grows as mappers decrease: {g50:.3} → {g1:.3}"
        );
    }

    #[test]
    fn rtw_single_mapper_time_in_paper_band() {
        // Paper Fig. 6(a): a single mapper writing 6.4 GB takes ≈ 200–250 s.
        let c = Constants::default();
        let h = rtw_job_secs(&c, Backend::Hdfs, 1, 6_871_947_674);
        let b = rtw_job_secs(&c, Backend::Bsfs, 1, 6_871_947_674);
        assert!((180.0..320.0).contains(&h), "HDFS 1 mapper: {h:.0}s");
        assert!((160.0..300.0).contains(&b), "BSFS 1 mapper: {b:.0}s");
    }

    #[test]
    fn grep_bsfs_wins_and_gap_holds_as_input_grows() {
        let c = Constants::default();
        let g64 = (
            grep_job(&c, Backend::Hdfs, 100, 1).secs,
            grep_job(&c, Backend::Bsfs, 100, 1).secs,
        );
        let g128 = (
            grep_job(&c, Backend::Hdfs, 200, 1).secs,
            grep_job(&c, Backend::Bsfs, 200, 1).secs,
        );
        let gain_64 = (g64.0 - g64.1) / g64.0;
        let gain_128 = (g128.0 - g128.1) / g128.0;
        // Paper: 35 % at 6.4 GB, 38 % at 12.8 GB.
        assert!(gain_64 > 0.15, "gain at 6.4 GB: {gain_64:.2} ({g64:?})");
        assert!(
            gain_128 >= gain_64 - 0.03,
            "gap must not shrink: {gain_64:.2} → {gain_128:.2}"
        );
    }

    #[test]
    fn grep_locality_tracks_placement_quality() {
        let c = Constants::default();
        let b = grep_job(&c, Backend::Bsfs, 150, 2);
        let h = grep_job(&c, Backend::Hdfs, 150, 2);
        assert!(
            b.locality > 0.9,
            "balanced layout → nearly all local: {:.2}",
            b.locality
        );
        assert!(
            h.locality < b.locality,
            "skewed layout loses locality: {:.2}",
            h.locality
        );
    }
}
