//! Regenerates Fig. 5: concurrent appends to a shared file — aggregated
//! throughput for 1→250 clients (§V-F). BSFS only: "we could not perform
//! the same experiment for HDFS, since it does not implement the append
//! operation".

use experiments::{fig5, Constants};

fn main() {
    let c = Constants::default();
    let counts = if bench::quick_mode() {
        vec![1, 100, 250]
    } else {
        fig5::paper_counts()
    };
    bench::print_figure(&fig5::run(&c, &counts));
}
