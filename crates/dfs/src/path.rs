//! Validated absolute paths for the DFS namespace.
//!
//! Both backends expose "a classical hierarchical directory structure"
//! (§IV-A). Paths are absolute, `/`-separated, with no `.`/`..`/empty
//! components; trailing slashes normalize away. Keeping validation here
//! means the namespace managers can index by clean strings.

use blobseer_types::{Error, Result};
use std::fmt;

/// A validated, normalized absolute path.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DfsPath {
    // Invariant: "/" or "/seg(/seg)*" with non-empty segments.
    inner: String,
}

impl DfsPath {
    /// The filesystem root.
    pub fn root() -> Self {
        Self {
            inner: "/".to_string(),
        }
    }

    /// Parses and normalizes `raw`. Errors on relative paths, empty
    /// components, `.` or `..`.
    pub fn parse(raw: &str) -> Result<Self> {
        if !raw.starts_with('/') {
            return Err(Error::InvalidPath(format!("{raw} (must be absolute)")));
        }
        let mut segs = Vec::new();
        for seg in raw.split('/') {
            match seg {
                "" => continue, // leading slash, doubled slash, trailing slash
                "." | ".." => {
                    return Err(Error::InvalidPath(format!(
                        "{raw} (no relative components)"
                    )))
                }
                s => segs.push(s),
            }
        }
        if segs.is_empty() {
            return Ok(Self::root());
        }
        Ok(Self {
            inner: format!("/{}", segs.join("/")),
        })
    }

    /// The normalized string form.
    pub fn as_str(&self) -> &str {
        &self.inner
    }

    /// True for the root path.
    pub fn is_root(&self) -> bool {
        self.inner == "/"
    }

    /// The parent directory; `None` for the root.
    pub fn parent(&self) -> Option<DfsPath> {
        if self.is_root() {
            return None;
        }
        match self.inner.rfind('/') {
            Some(0) => Some(DfsPath::root()),
            Some(i) => Some(DfsPath {
                inner: self.inner[..i].to_string(),
            }),
            None => unreachable!("absolute path always contains '/'"),
        }
    }

    /// The final component; empty string for the root.
    pub fn name(&self) -> &str {
        if self.is_root() {
            ""
        } else {
            &self.inner[self.inner.rfind('/').expect("absolute") + 1..]
        }
    }

    /// Appends a single child component.
    pub fn join(&self, child: &str) -> Result<DfsPath> {
        if child.is_empty() || child.contains('/') {
            return Err(Error::InvalidPath(format!(
                "invalid child component: {child:?}"
            )));
        }
        DfsPath::parse(&format!("{}/{}", self.inner, child))
    }

    /// Path components from the root down (empty for the root itself).
    pub fn components(&self) -> impl Iterator<Item = &str> {
        self.inner.split('/').filter(|s| !s.is_empty())
    }

    /// True if `self` equals or is a descendant of `ancestor`.
    pub fn starts_with(&self, ancestor: &DfsPath) -> bool {
        if ancestor.is_root() {
            return true;
        }
        self.inner == ancestor.inner
            || self
                .inner
                .strip_prefix(&ancestor.inner)
                .map(|rest| rest.starts_with('/'))
                .unwrap_or(false)
    }
}

impl fmt::Display for DfsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.inner)
    }
}

impl fmt::Debug for DfsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_normalizes() {
        assert_eq!(DfsPath::parse("/a/b").unwrap().as_str(), "/a/b");
        assert_eq!(DfsPath::parse("/a/b/").unwrap().as_str(), "/a/b");
        assert_eq!(DfsPath::parse("//a///b").unwrap().as_str(), "/a/b");
        assert_eq!(DfsPath::parse("/").unwrap().as_str(), "/");
        assert_eq!(DfsPath::parse("///").unwrap().as_str(), "/");
    }

    #[test]
    fn parse_rejects_bad_paths() {
        for bad in ["", "a/b", "relative", "/a/../b", "/a/./b"] {
            assert!(DfsPath::parse(bad).is_err(), "{bad:?} should be invalid");
        }
    }

    #[test]
    fn parent_and_name() {
        let p = DfsPath::parse("/a/b/c").unwrap();
        assert_eq!(p.name(), "c");
        assert_eq!(p.parent().unwrap().as_str(), "/a/b");
        assert_eq!(
            DfsPath::parse("/a").unwrap().parent().unwrap().as_str(),
            "/"
        );
        assert!(DfsPath::root().parent().is_none());
        assert_eq!(DfsPath::root().name(), "");
    }

    #[test]
    fn join_children() {
        let p = DfsPath::parse("/a").unwrap();
        assert_eq!(p.join("b").unwrap().as_str(), "/a/b");
        assert_eq!(DfsPath::root().join("x").unwrap().as_str(), "/x");
        assert!(p.join("").is_err());
        assert!(p.join("b/c").is_err());
    }

    #[test]
    fn components_iterate() {
        let p = DfsPath::parse("/a/b/c").unwrap();
        assert_eq!(p.components().collect::<Vec<_>>(), vec!["a", "b", "c"]);
        assert_eq!(DfsPath::root().components().count(), 0);
    }

    #[test]
    fn ancestry() {
        let a = DfsPath::parse("/a").unwrap();
        let ab = DfsPath::parse("/a/b").unwrap();
        let abc = DfsPath::parse("/a/bc").unwrap();
        assert!(ab.starts_with(&a));
        assert!(ab.starts_with(&ab));
        assert!(
            !abc.starts_with(&ab),
            "no false prefix match on /a/b vs /a/bc"
        );
        assert!(!a.starts_with(&ab));
        assert!(ab.starts_with(&DfsPath::root()));
    }
}
