//! Control-plane microbench: what does version-manager replication cost
//! per issued version?
//!
//! The replicated group (`blobseer_control::ReplicatedVersionService`)
//! pays one replication round per mutation — leader apply + log append,
//! then append + apply on every live follower, all under the group lock.
//! The figure reproductions run the paper's single version manager
//! (`version_replicas = 1`, see docs/REPRODUCING.md), so this bench is
//! the honest price list for turning fault tolerance on: replicated vs
//! single-VM version-issue throughput, sequential and contended.

use blobseer_control::ReplicatedVersionService;
use blobseer_core::ports::VersionService;
use blobseer_core::stats::EngineStats;
use blobseer_core::version_manager::VersionManager;
use blobseer_core::WriteIntent;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

const BLOCK: u64 = 64 * 1024 * 1024;

/// The backends under comparison, behind the same `VersionService` port
/// the clients use.
fn backends() -> Vec<(&'static str, Arc<dyn VersionService>)> {
    vec![
        (
            "single_vm",
            Arc::new(VersionManager::new(BLOCK, Arc::new(EngineStats::new()))) as _,
        ),
        ("replicated_3", ReplicatedVersionService::new(3, BLOCK) as _),
        ("replicated_5", ReplicatedVersionService::new(5, BLOCK) as _),
    ]
}

/// Sequential assign+commit pairs on one BLOB — the §III-A.4 serialized
/// step as a single client sees it.
fn bench_version_issue(c: &mut Criterion) {
    let mut g = c.benchmark_group("control/version_issue");
    for (label, vm) in backends() {
        let blob = vm.create_blob().unwrap();
        g.bench_function(label, |b| {
            b.iter(|| {
                let t = vm
                    .assign(blob, WriteIntent::Append { size: BLOCK })
                    .unwrap();
                vm.commit(blob, t.version).unwrap();
                black_box(t.version)
            });
        });
    }
    g.finish();
}

/// Contended assignment: 8 threads on one BLOB (the Fig. 5 hot path) —
/// replication serializes the whole round, so this is where its cost
/// shows up at scale.
fn bench_contended_issue(c: &mut Criterion) {
    let mut g = c.benchmark_group("control/contended_8_threads");
    g.sample_size(10);
    for (label, vm) in backends() {
        g.bench_function(label, |b| {
            b.iter(|| {
                let blob = vm.create_blob().unwrap();
                let threads: Vec<_> = (0..8)
                    .map(|_| {
                        let vm = Arc::clone(&vm);
                        std::thread::spawn(move || {
                            for _ in 0..200 {
                                let t = vm.assign(blob, WriteIntent::Append { size: 64 }).unwrap();
                                vm.commit(blob, t.version).unwrap();
                            }
                        })
                    })
                    .collect();
                for t in threads {
                    t.join().unwrap();
                }
                black_box(vm.latest(blob).unwrap())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_version_issue, bench_contended_issue);
criterion_main!(benches);
