//! Contention microbenchmark for the lock-striped store adapters: put
//! throughput at 1/4/16 writer threads on a single data provider, global
//! lock (`shards = 1`, the seed's layout) vs. the sharded default.
//!
//! This is the bench behind the service-port refactor's performance claim:
//! under 16 concurrent writers the sharded provider must sustain at least
//! ~2× the global-lock put throughput, because writers hashing to
//! different stripes no longer serialize on one `RwLock`.

use blobseer_core::block_store::DataProvider;
use blobseer_core::sharded::DEFAULT_SHARDS;
use blobseer_types::{BlockId, NodeId};
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::atomic::{AtomicU64, Ordering};

/// Puts per thread per measured iteration.
const PUTS: u64 = 256;

/// A monotone id well, so every put stores a fresh (immutable) block.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

fn put_storm(provider: &DataProvider, threads: u64) {
    let payload = Bytes::from_static(b"0123456789abcdef0123456789abcdef");
    std::thread::scope(|s| {
        for _ in 0..threads {
            let base = NEXT_ID.fetch_add(PUTS, Ordering::Relaxed);
            let payload = payload.clone();
            s.spawn(move || {
                for i in 0..PUTS {
                    provider.put(BlockId::new(base + i), payload.clone());
                }
                // Drop the blocks again so long runs stay memory-flat; the
                // deletes hit the same stripes and count as contention too.
                for i in 0..PUTS {
                    provider.delete(BlockId::new(base + i));
                }
            });
        }
    });
}

fn bench_put_contention(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_contention/put");
    for &threads in &[1u64, 4, 16] {
        for (label, shards) in [("global-lock", 1usize), ("sharded", DEFAULT_SHARDS)] {
            g.throughput(Throughput::Elements(threads * PUTS));
            g.bench_with_input(
                BenchmarkId::new(label, format!("{threads}thr")),
                &threads,
                |b, &threads| {
                    let provider = DataProvider::with_shards(NodeId::new(0), shards);
                    b.iter(|| put_storm(&provider, threads));
                },
            );
        }
    }
    g.finish();
}

/// Direct wall-clock comparison at 16 threads, printed with the bench run:
/// the sharded adapter's speedup over the global lock (the refactor's
/// acceptance line expects ≥ 2×).
fn bench_speedup_summary(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_contention/speedup_16thr");
    let measure = |shards: usize| {
        let provider = DataProvider::with_shards(NodeId::new(0), shards);
        // Warm-up.
        put_storm(&provider, 16);
        let t = std::time::Instant::now();
        for _ in 0..8 {
            put_storm(&provider, 16);
        }
        t.elapsed().as_secs_f64()
    };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    g.bench_function("report", |b| {
        b.iter(|| {
            let global = measure(1);
            let sharded = measure(DEFAULT_SHARDS);
            println!(
                "    16-thread put storm ({cores} core(s)): global-lock {:.1} ms, \
                 sharded {:.1} ms → {:.2}x",
                global * 1e3,
                sharded * 1e3,
                global / sharded
            );
            if cores == 1 {
                println!(
                    "    note: single-core host — threads never overlap, so lock \
                     striping cannot show its parallel speedup here; run on ≥2 \
                     cores for the contention comparison"
                );
            }
            (global, sharded)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_put_contention, bench_speedup_summary);
criterion_main!(benches);
