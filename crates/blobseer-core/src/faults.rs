//! Fault-injecting decorators over the service ports.
//!
//! The paper leaves writer failure to "minimal mechanisms" (§VI-B); the
//! crash-consistency tests make those mechanisms concrete by wrapping any
//! [`BlockStore`]/[`MetaStore`] adapter in a decorator that misbehaves on
//! command:
//!
//! * **drop** — the put reports success but stores nothing (a write lost in
//!   flight after the ack: the classic silent data loss);
//! * **fail** — the put returns [`Error::WriteAborted`] (provider refused or
//!   unreachable: the client observes the failure immediately);
//! * **delay** — the put is buffered and only applied on
//!   [`FaultyBlockStore::flush_delayed`] (reordering / late arrival; never flushing
//!   models a crash with dirty buffers);
//! * **duplicate** — the put is applied twice (a retried RPC whose first
//!   attempt did land: exercises idempotence).
//!
//! Reads, deletes and statistics always pass through, so tests can inspect
//! the damage with the normal APIs.
//!
//! The decorators deliberately keep the *default* vectored implementations
//! of `put_many`/`get_many`/`delete_many` (looping over the single-item
//! methods): each item of a batch passes through the fault plan
//! individually, so a `FailOnce` plan fails exactly the first item of a
//! batch and lets the rest land — the partial-failure behavior the
//! vectored API's per-item `Result`s exist for.

use crate::meta::key::NodeKey;
use crate::meta::node::TreeNode;
use crate::ports::{BlockStore, MetaStore};
use blobseer_types::{BlockId, Error, NodeId, Result};
use bytes::Bytes;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

/// What the decorator does with the next puts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PutFault {
    /// Pass through untouched.
    None,
    /// Acknowledge but store nothing.
    Drop,
    /// Return `Error::WriteAborted`.
    Fail,
    /// Return `Error::WriteAborted` for exactly one put, then revert to
    /// pass-through (a transient refusal: the window a writer's
    /// self-repair must survive).
    FailOnce,
    /// Buffer until [`FaultyBlockStore::flush_delayed`].
    Delay,
    /// Apply twice (simulated retry of a delivered request).
    Duplicate,
}

impl PutFault {
    fn from_u8(v: u8) -> Self {
        match v {
            1 => PutFault::Drop,
            2 => PutFault::Fail,
            3 => PutFault::Delay,
            4 => PutFault::Duplicate,
            5 => PutFault::FailOnce,
            _ => PutFault::None,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            PutFault::None => 0,
            PutFault::Drop => 1,
            PutFault::Fail => 2,
            PutFault::Delay => 3,
            PutFault::Duplicate => 4,
            PutFault::FailOnce => 5,
        }
    }
}

/// Shared fault switchboard: tests flip the mode mid-run and inspect the
/// damage counters afterwards. One plan can drive both a block-store and a
/// meta-store decorator.
#[derive(Debug, Default)]
pub struct FaultPlan {
    mode: AtomicU8,
    dropped: AtomicU64,
    failed: AtomicU64,
    delayed: AtomicU64,
    duplicated: AtomicU64,
}

impl FaultPlan {
    /// A plan starting in pass-through mode.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Sets the behavior of subsequent puts.
    pub fn set(&self, fault: PutFault) {
        self.mode.store(fault.as_u8(), Ordering::SeqCst);
    }

    /// The currently active fault.
    pub fn current(&self) -> PutFault {
        PutFault::from_u8(self.mode.load(Ordering::SeqCst))
    }

    /// `(dropped, failed, delayed, duplicated)` puts so far.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.dropped.load(Ordering::SeqCst),
            self.failed.load(Ordering::SeqCst),
            self.delayed.load(Ordering::SeqCst),
            self.duplicated.load(Ordering::SeqCst),
        )
    }
}

/// A [`BlockStore`] decorator applying a [`FaultPlan`] to puts.
pub struct FaultyBlockStore {
    inner: Arc<dyn BlockStore>,
    plan: Arc<FaultPlan>,
    delayed: Mutex<Vec<(usize, BlockId, Bytes)>>,
}

impl FaultyBlockStore {
    /// Wraps `inner`, controlled by `plan`.
    pub fn new(inner: Arc<dyn BlockStore>, plan: Arc<FaultPlan>) -> Self {
        Self {
            inner,
            plan,
            delayed: Mutex::named(Vec::new(), "faults.block.delayed"),
        }
    }

    /// Applies every delayed put (late arrival) in buffered order. If the
    /// inner store rejects one, the flush stops there and the rejected put
    /// plus the un-flushed tail stay buffered for a later retry — an
    /// interrupted flush must not silently discard healthy delayed puts.
    pub fn flush_delayed(&self) -> Result<()> {
        let mut queue = self.delayed.lock();
        while let Some((p, id, data)) = queue.first().cloned() {
            self.inner.put(p, id, data)?;
            queue.remove(0);
        }
        Ok(())
    }
}

impl BlockStore for FaultyBlockStore {
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn node(&self, provider: usize) -> NodeId {
        self.inner.node(provider)
    }
    fn index_of_node(&self, node: NodeId) -> Option<usize> {
        self.inner.index_of_node(node)
    }
    fn put(&self, provider: usize, id: BlockId, data: Bytes) -> Result<()> {
        match self.plan.current() {
            PutFault::None => self.inner.put(provider, id, data),
            PutFault::Drop => {
                self.plan.dropped.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }
            fault @ (PutFault::Fail | PutFault::FailOnce) => {
                if fault == PutFault::FailOnce {
                    self.plan.set(PutFault::None);
                }
                self.plan.failed.fetch_add(1, Ordering::SeqCst);
                Err(Error::WriteAborted(format!(
                    "injected fault: provider {provider} refused block {id}"
                )))
            }
            PutFault::Delay => {
                self.plan.delayed.fetch_add(1, Ordering::SeqCst);
                self.delayed.lock().push((provider, id, data));
                Ok(())
            }
            PutFault::Duplicate => {
                self.plan.duplicated.fetch_add(1, Ordering::SeqCst);
                self.inner.put(provider, id, data.clone())?;
                self.inner.put(provider, id, data)
            }
        }
    }
    fn get(&self, provider: usize, id: BlockId) -> Result<Bytes> {
        self.inner.get(provider, id)
    }
    fn contains(&self, provider: usize, id: BlockId) -> bool {
        self.inner.contains(provider, id)
    }
    fn delete(&self, provider: usize, id: BlockId) -> Result<u64> {
        self.inner.delete(provider, id)
    }
    fn block_count(&self, provider: usize) -> usize {
        self.inner.block_count(provider)
    }
    fn bytes_stored(&self, provider: usize) -> u64 {
        self.inner.bytes_stored(provider)
    }
    fn op_counts(&self, provider: usize) -> (u64, u64) {
        self.inner.op_counts(provider)
    }
}

/// A [`MetaStore`] decorator applying a [`FaultPlan`] to puts.
pub struct FaultyMetaStore {
    inner: Arc<dyn MetaStore>,
    plan: Arc<FaultPlan>,
    delayed: Mutex<Vec<(NodeKey, TreeNode)>>,
}

impl FaultyMetaStore {
    /// Wraps `inner`, controlled by `plan`.
    pub fn new(inner: Arc<dyn MetaStore>, plan: Arc<FaultPlan>) -> Self {
        Self {
            inner,
            plan,
            delayed: Mutex::named(Vec::new(), "faults.meta.delayed"),
        }
    }

    /// Applies every delayed put (late arrival) in buffered order. Like
    /// [`FaultyBlockStore::flush_delayed`], an inner rejection stops the
    /// flush and keeps the rejected put plus the tail buffered for retry.
    pub fn flush_delayed(&self) -> Result<()> {
        let mut queue = self.delayed.lock();
        while let Some((key, node)) = queue.first().cloned() {
            self.inner.put(key, node)?;
            queue.remove(0);
        }
        Ok(())
    }
}

impl MetaStore for FaultyMetaStore {
    fn put(&self, key: NodeKey, node: TreeNode) -> Result<()> {
        match self.plan.current() {
            PutFault::None => self.inner.put(key, node),
            PutFault::Drop => {
                self.plan.dropped.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }
            fault @ (PutFault::Fail | PutFault::FailOnce) => {
                if fault == PutFault::FailOnce {
                    self.plan.set(PutFault::None);
                }
                self.plan.failed.fetch_add(1, Ordering::SeqCst);
                Err(Error::WriteAborted(format!(
                    "injected fault: metadata put refused for {key:?}"
                )))
            }
            PutFault::Delay => {
                self.plan.delayed.fetch_add(1, Ordering::SeqCst);
                self.delayed.lock().push((key, node));
                Ok(())
            }
            PutFault::Duplicate => {
                self.plan.duplicated.fetch_add(1, Ordering::SeqCst);
                self.inner.put(key, node.clone())?;
                self.inner.put(key, node)
            }
        }
    }
    fn get(&self, key: &NodeKey) -> Result<TreeNode> {
        self.inner.get(key)
    }
    fn delete(&self, key: &NodeKey) -> bool {
        self.inner.delete(key)
    }
    fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }
    fn node_count(&self) -> usize {
        self.inner.node_count()
    }
    fn shard_stats(&self) -> Vec<(usize, u64, u64)> {
        self.inner.shard_stats()
    }
    fn crash_shard(&self, shard: usize) {
        self.inner.crash_shard(shard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_store::ProviderSet;

    fn store() -> (FaultyBlockStore, Arc<FaultPlan>) {
        let plan = FaultPlan::new();
        let inner: Arc<dyn BlockStore> = Arc::new(ProviderSet::new(2, |i| NodeId::new(i as u64)));
        (FaultyBlockStore::new(inner, Arc::clone(&plan)), plan)
    }

    #[test]
    fn drop_acks_but_loses_data() {
        let (s, plan) = store();
        plan.set(PutFault::Drop);
        s.put(0, BlockId::new(1), Bytes::from_static(b"x")).unwrap();
        assert!(!s.contains(0, BlockId::new(1)));
        assert_eq!(plan.counters().0, 1);
    }

    #[test]
    fn fail_is_visible_to_the_caller() {
        let (s, plan) = store();
        plan.set(PutFault::Fail);
        let err = s
            .put(0, BlockId::new(1), Bytes::from_static(b"x"))
            .unwrap_err();
        assert!(matches!(err, Error::WriteAborted(_)), "{err}");
        assert_eq!(plan.counters().1, 1);
    }

    #[test]
    fn delay_holds_until_flush() {
        let (s, plan) = store();
        plan.set(PutFault::Delay);
        s.put(1, BlockId::new(2), Bytes::from_static(b"late"))
            .unwrap();
        assert!(!s.contains(1, BlockId::new(2)));
        s.flush_delayed().unwrap();
        assert_eq!(s.get(1, BlockId::new(2)).unwrap(), &b"late"[..]);
    }

    #[test]
    fn duplicate_is_idempotent_on_the_inner_store() {
        let (s, plan) = store();
        plan.set(PutFault::Duplicate);
        s.put(0, BlockId::new(3), Bytes::from_static(b"abcd"))
            .unwrap();
        assert_eq!(s.block_count(0), 1);
        assert_eq!(s.bytes_stored(0), 4, "no double counting");
        assert_eq!(plan.counters().3, 1);
    }
}
