//! The version manager: assigns snapshot versions and enforces the reveal
//! order that makes BlobSeer linearizable (§III-A.4, §III-A.5).
//!
//! Version assignment is "the only step in the writing process where
//! concurrent requests are serialized": a per-BLOB mutex hands out
//! monotonically increasing version numbers and, for appends, fixes the
//! offset to "the size of the snapshot corresponding to the preceding
//! version number" — even when that snapshot is still being written
//! (§III-D). Each assignment also appends a [`LogEntry`] to the BLOB's
//! write log; the ticket carries the log *chain*, which is the hint
//! mechanism concurrent writers use to weave metadata.
//!
//! Commits may arrive out of order; the snapshot `v` is *revealed* to
//! readers only once every version `<= v` has committed ("the system simply
//! delays revealing the snapshot to the readers until the metadata of all
//! lower versions has been successfully written"). A condition variable
//! lets clients block until a version becomes visible.
//!
//! Branching (§VI-A, "branching a dataset into two independent datasets")
//! creates a new BLOB whose history *chains* to the parent's log up to the
//! branch point: an O(1) operation sharing all data and metadata.

use crate::meta::key::{BlockRange, NodeKey, Pos};
use crate::meta::log::{LogChain, LogEntry, LogSegment, SharedLog};
use crate::stats::EngineStats;
use blobseer_types::{BlobId, Error, Result, Version};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What a writer wants to do; sizes in bytes, must be positive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteIntent {
    /// Write `size` bytes at an explicit `offset` (possibly past the end —
    /// the gap reads as zeros).
    Write { offset: u64, size: u64 },
    /// Append `size` bytes at the current end; the offset is fixed at
    /// assignment time (§III-D).
    Append { size: u64 },
}

impl WriteIntent {
    fn size(&self) -> u64 {
        match self {
            WriteIntent::Write { size, .. } | WriteIntent::Append { size } => *size,
        }
    }
}

/// Everything a writer needs to publish its metadata after the data phase.
#[derive(Clone)]
pub struct WriteTicket {
    /// The BLOB being written.
    pub blob: BlobId,
    /// The assigned snapshot version.
    pub version: Version,
    /// Resolved byte offset of the update (appends: previous size).
    pub offset: u64,
    /// Size of the preceding snapshot in bytes.
    pub prev_size: u64,
    /// This write's log entry (blocks, capacities, new size).
    pub entry: LogEntry,
    /// The write-log chain for metadata weaving.
    pub chain: LogChain,
}

/// Geometry and visibility of one snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// The snapshot version.
    pub version: Version,
    /// BLOB size in bytes at this version.
    pub size: u64,
    /// Tree capacity in blocks (power of two; 0 for the empty BLOB).
    pub cap: u64,
    /// The lineage whose write materialized this version's root (differs
    /// from the queried blob for inherited, pre-branch versions).
    pub root_blob: BlobId,
    /// True once the snapshot is visible to readers.
    pub revealed: bool,
}

impl SnapshotInfo {
    /// The DHT key of this snapshot's root node (meaningless for v0).
    pub fn root_key(&self) -> NodeKey {
        NodeKey::new(self.root_blob, self.version, Pos::root(self.cap))
    }
}

struct BlobInner {
    latest_assigned: Version,
    revealed: Version,
    /// Committed versions above `revealed`, waiting for lower versions.
    committed: BTreeSet<Version>,
    /// Own versions `<= collected_up_to` have been garbage collected.
    collected_up_to: Version,
}

struct BlobState {
    id: BlobId,
    /// Versions `<= base` resolve through `ancestry` (0 for root blobs).
    base: Version,
    log: SharedLog,
    /// Ancestor segments, youngest first, already clipped to the branch
    /// points.
    ancestry: Vec<LogSegment>,
    inner: Mutex<BlobInner>,
    reveal_cv: Condvar,
}

impl BlobState {
    fn chain(&self) -> LogChain {
        let mut segments = Vec::with_capacity(1 + self.ancestry.len());
        segments.push(LogSegment::full(
            self.id,
            Arc::clone(&self.log),
            self.base,
            Version::new(u64::MAX),
        ));
        segments.extend(self.ancestry.iter().cloned());
        LogChain::new(segments)
    }

    /// Size and capacity of the snapshot preceding `first_own = base + 1`,
    /// i.e. the branch point (or the empty BLOB).
    fn base_geometry(&self) -> (u64, u64) {
        if self.base.is_zero() {
            return (0, 0);
        }
        for seg in &self.ancestry {
            if let Some(e) = seg.entry(self.base) {
                return (e.size_after, e.cap_after);
            }
        }
        unreachable!("branch base {} must exist in ancestry", self.base)
    }
}

/// The version manager service.
pub struct VersionManager {
    block_size: u64,
    blobs: RwLock<HashMap<BlobId, Arc<BlobState>>>,
    next_blob: AtomicU64,
    stats: Arc<EngineStats>,
}

impl VersionManager {
    /// Creates a version manager for BLOBs striped into `block_size` blocks.
    pub fn new(block_size: u64, stats: Arc<EngineStats>) -> Self {
        assert!(block_size > 0, "block size must be positive");
        Self {
            block_size,
            blobs: RwLock::named(HashMap::new(), "vm.blobs"),
            next_blob: AtomicU64::new(1),
            stats,
        }
    }

    /// The configured block size.
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Creates a new, empty BLOB and returns its id.
    pub fn create_blob(&self) -> BlobId {
        let id = BlobId::new(self.next_blob.fetch_add(1, Ordering::Relaxed));
        let state = BlobState {
            id,
            base: Version::ZERO,
            log: Arc::new(RwLock::named(Vec::new(), "vm.blob.log")),
            ancestry: Vec::new(),
            inner: Mutex::named(
                BlobInner {
                    latest_assigned: Version::ZERO,
                    revealed: Version::ZERO,
                    committed: BTreeSet::new(),
                    collected_up_to: Version::ZERO,
                },
                "vm.blob.inner",
            ),
            reveal_cv: Condvar::named("vm.blob.reveal"),
        };
        self.blobs.write().insert(id, Arc::new(state));
        id
    }

    fn state(&self, blob: BlobId) -> Result<Arc<BlobState>> {
        self.blobs
            .read()
            .get(&blob)
            .cloned()
            .ok_or(Error::NoSuchBlob(blob.raw()))
    }

    /// Forks `parent` at (revealed) version `at` into a new BLOB sharing
    /// all data and metadata up to the branch point. O(1): no copying.
    ///
    /// The caller is responsible for registering a GC reference on the
    /// branch point's root (see `BlobClient::branch`).
    pub fn branch(&self, parent: BlobId, at: Version) -> Result<BlobId> {
        let parent_state = self.state(parent)?;
        let parent_collected = {
            let inner = parent_state.inner.lock();
            if at > inner.latest_assigned {
                return Err(Error::NoSuchVersion {
                    blob: parent.raw(),
                    version: at.raw(),
                });
            }
            if at > inner.revealed {
                return Err(Error::VersionNotRevealed {
                    blob: parent.raw(),
                    version: at.raw(),
                });
            }
            if at <= inner.collected_up_to {
                return Err(Error::NoSuchVersion {
                    blob: parent.raw(),
                    version: at.raw(),
                });
            }
            inner.collected_up_to
        };
        // Child ancestry: parent's own segment plus parent's ancestry, each
        // clipped to the branch point. Versions the parent has already
        // garbage-collected are excluded — their trees are gone.
        let mut ancestry = Vec::new();
        let parent_own = LogSegment {
            blob: parent_state.id,
            entries: Arc::clone(&parent_state.log),
            vec_base: parent_state.base,
            lo: parent_state.base.max(parent_collected),
            hi: at,
        };
        if parent_own.hi > parent_own.lo {
            ancestry.push(parent_own);
        }
        for seg in &parent_state.ancestry {
            let hi = if seg.hi < at { seg.hi } else { at };
            if hi > seg.lo {
                ancestry.push(LogSegment { hi, ..seg.clone() });
            }
        }
        let id = BlobId::new(self.next_blob.fetch_add(1, Ordering::Relaxed));
        let state = BlobState {
            id,
            base: at,
            log: Arc::new(RwLock::named(Vec::new(), "vm.blob.log")),
            ancestry,
            inner: Mutex::named(
                BlobInner {
                    latest_assigned: at,
                    revealed: at,
                    committed: BTreeSet::new(),
                    collected_up_to: Version::ZERO,
                },
                "vm.blob.inner",
            ),
            reveal_cv: Condvar::named("vm.blob.reveal"),
        };
        self.blobs.write().insert(id, Arc::new(state));
        Ok(id)
    }

    /// Assigns the next version for a write/append — the serialization
    /// point of the protocol. Returns the ticket the writer needs to
    /// publish its metadata.
    pub fn assign(&self, blob: BlobId, intent: WriteIntent) -> Result<WriteTicket> {
        if intent.size() == 0 {
            return Err(Error::WriteAborted(
                "zero-length writes are rejected".into(),
            ));
        }
        let state = self.state(blob)?;
        let mut inner = state.inner.lock();
        let version = inner.latest_assigned.next();
        let (prev_size, prev_cap) = if inner.latest_assigned == state.base {
            state.base_geometry()
        } else {
            let log = state.log.read();
            let e = log.last().expect("versions past base imply log entries"); // lint:allow(no-unwrap): any version past base appended a log entry
            (e.size_after, e.cap_after)
        };
        let (offset, size) = match intent {
            WriteIntent::Write { offset, size } => (offset, size),
            WriteIntent::Append { size } => (prev_size, size),
        };
        let size_after = prev_size.max(offset + size);
        let blocks = BlockRange::of_bytes(offset, size, self.block_size);
        let cap_after = size_after
            .div_ceil(self.block_size)
            .next_power_of_two()
            .max(prev_cap);
        let entry = LogEntry {
            version,
            blocks,
            cap_before: prev_cap,
            cap_after,
            size_after,
        };
        state.log.write().push(entry);
        inner.latest_assigned = version;
        EngineStats::add(&self.stats.versions_assigned, 1);
        Ok(WriteTicket {
            blob,
            version,
            offset,
            prev_size,
            entry,
            chain: state.chain(),
        })
    }

    /// Marks `version`'s metadata as successfully written. Reveals it (and
    /// any queued higher versions) once all lower versions committed.
    pub fn commit(&self, blob: BlobId, version: Version) -> Result<()> {
        let state = self.state(blob)?;
        let mut inner = state.inner.lock();
        if version > inner.latest_assigned {
            return Err(Error::NoSuchVersion {
                blob: blob.raw(),
                version: version.raw(),
            });
        }
        if version <= inner.revealed || !inner.committed.insert(version) {
            return Err(Error::Internal(format!(
                "double commit of {blob} {version}"
            )));
        }
        let mut advanced = false;
        loop {
            let next = inner.revealed.next();
            if !inner.committed.remove(&next) {
                break;
            }
            inner.revealed = next;
            advanced = true;
        }
        if advanced {
            state.reveal_cv.notify_all();
        }
        Ok(())
    }

    /// The latest revealed snapshot: `(version, size)`. The paper's "special
    /// call \[that\] allows the client to find out the latest version"
    /// (§III-A.1).
    pub fn latest(&self, blob: BlobId) -> Result<(Version, u64)> {
        let state = self.state(blob)?;
        let revealed = state.inner.lock().revealed;
        let info = self.snapshot_info(blob, revealed)?;
        Ok((revealed, info.size))
    }

    /// Geometry and visibility of snapshot `version`.
    pub fn snapshot_info(&self, blob: BlobId, version: Version) -> Result<SnapshotInfo> {
        let state = self.state(blob)?;
        if version.is_zero() {
            return Ok(SnapshotInfo {
                version,
                size: 0,
                cap: 0,
                root_blob: blob,
                revealed: true,
            });
        }
        let (latest_assigned, revealed, collected) = {
            let inner = state.inner.lock();
            (inner.latest_assigned, inner.revealed, inner.collected_up_to)
        };
        if version > latest_assigned {
            return Err(Error::NoSuchVersion {
                blob: blob.raw(),
                version: version.raw(),
            });
        }
        if version > state.base && version <= collected {
            return Err(Error::NoSuchVersion {
                blob: blob.raw(),
                version: version.raw(),
            });
        }
        if version > state.base {
            let log = state.log.read();
            let idx = (version.raw() - state.base.raw() - 1) as usize;
            let e = log[idx];
            debug_assert_eq!(e.version, version);
            return Ok(SnapshotInfo {
                version,
                size: e.size_after,
                cap: e.cap_after,
                root_blob: blob,
                revealed: version <= revealed,
            });
        }
        // Inherited (pre-branch) version: resolve through ancestry; those
        // versions were revealed before the branch was allowed.
        for seg in &state.ancestry {
            if let Some(e) = seg.entry(version) {
                return Ok(SnapshotInfo {
                    version,
                    size: e.size_after,
                    cap: e.cap_after,
                    root_blob: seg.blob,
                    revealed: true,
                });
            }
        }
        Err(Error::NoSuchVersion {
            blob: blob.raw(),
            version: version.raw(),
        })
    }

    /// The write-log chain of a BLOB (own log plus ancestry).
    pub fn chain(&self, blob: BlobId) -> Result<LogChain> {
        Ok(self.state(blob)?.chain())
    }

    /// Blocks until `version` is revealed or `timeout` elapses.
    pub fn wait_revealed(&self, blob: BlobId, version: Version, timeout: Duration) -> Result<()> {
        let state = self.state(blob)?;
        let mut inner = state.inner.lock();
        if inner.revealed >= version {
            return Ok(());
        }
        let deadline = std::time::Instant::now() + timeout;
        while inner.revealed < version {
            if state.reveal_cv.wait_until(&mut inner, deadline).timed_out() {
                return Err(Error::Timeout(format!("reveal of {blob} {version}")));
            }
        }
        Ok(())
    }

    /// Versions assigned but not yet revealed (diagnostics; a non-empty
    /// result with no active writers indicates a crashed writer, the
    /// "minimal fault tolerance" caveat of §VI-B).
    pub fn pending_versions(&self, blob: BlobId) -> Result<Vec<Version>> {
        let state = self.state(blob)?;
        let inner = state.inner.lock();
        Ok((inner.revealed.raw() + 1..=inner.latest_assigned.raw())
            .map(Version::new)
            .collect())
    }

    /// Unregisters a BLOB entirely, returning the root keys of all its own
    /// revealed versions so the caller can release their storage. Branches
    /// taken from this BLOB keep working: they hold the log segments via
    /// `Arc` and GC references on their branch points. Writers still in
    /// flight on the deleted BLOB will fail at commit with `NoSuchBlob`;
    /// their blocks become unreferenced (the same caveat as crashed
    /// writers, §VI-B).
    pub fn delete_blob(&self, blob: BlobId) -> Result<Vec<NodeKey>> {
        let state = self.state(blob)?;
        let mut roots = Vec::new();
        {
            let inner = state.inner.lock();
            let mut v = inner.collected_up_to.max(state.base).next();
            while v <= inner.revealed {
                let log = state.log.read();
                let idx = (v.raw() - state.base.raw() - 1) as usize;
                let e = log[idx];
                roots.push(NodeKey::new(blob, v, Pos::root(e.cap_after)));
                v = v.next();
            }
        }
        self.blobs.write().remove(&blob);
        Ok(roots)
    }

    /// Marks own versions strictly below `keep_from` (and strictly below the
    /// latest revealed version) as collected, returning the root keys whose
    /// GC references the caller must release. Inherited (pre-branch)
    /// versions are never collected through a child.
    pub fn collect_before(&self, blob: BlobId, keep_from: Version) -> Result<Vec<NodeKey>> {
        let state = self.state(blob)?;
        let mut inner = state.inner.lock();
        let limit = keep_from.min(inner.revealed); // never touch unrevealed or the latest
        let from = inner.collected_up_to.max(state.base).next();
        let mut roots = Vec::new();
        let mut v = from;
        while v < limit {
            let log = state.log.read();
            let idx = (v.raw() - state.base.raw() - 1) as usize;
            let e = log[idx];
            roots.push(NodeKey::new(blob, v, Pos::root(e.cap_after)));
            v = v.next();
        }
        if !roots.is_empty() {
            inner.collected_up_to = Version::new(limit.raw() - 1);
        }
        Ok(roots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vm(block_size: u64) -> VersionManager {
        VersionManager::new(block_size, Arc::new(EngineStats::new()))
    }

    #[test]
    fn create_assign_commit_reveal() {
        let vm = vm(64);
        let b = vm.create_blob();
        assert_eq!(vm.latest(b).unwrap(), (Version::ZERO, 0));
        let t = vm.assign(b, WriteIntent::Append { size: 100 }).unwrap();
        assert_eq!(t.version, Version::new(1));
        assert_eq!(t.offset, 0);
        assert_eq!(t.entry.size_after, 100);
        assert_eq!(t.entry.cap_after, 2);
        // Not revealed before commit.
        assert_eq!(vm.latest(b).unwrap(), (Version::ZERO, 0));
        assert!(!vm.snapshot_info(b, t.version).unwrap().revealed);
        vm.commit(b, t.version).unwrap();
        assert_eq!(vm.latest(b).unwrap(), (Version::new(1), 100));
        assert!(vm.snapshot_info(b, t.version).unwrap().revealed);
    }

    #[test]
    fn append_offsets_chain_through_inflight_writes() {
        // §III-D: the append offset is the size of the *preceding* snapshot
        // even when that snapshot is still being written.
        let vm = vm(64);
        let b = vm.create_blob();
        let t1 = vm.assign(b, WriteIntent::Append { size: 100 }).unwrap();
        let t2 = vm.assign(b, WriteIntent::Append { size: 50 }).unwrap();
        let t3 = vm.assign(b, WriteIntent::Append { size: 10 }).unwrap();
        assert_eq!(t1.offset, 0);
        assert_eq!(t2.offset, 100, "sees t1's size before t1 commits");
        assert_eq!(t3.offset, 150);
        assert_eq!(t3.entry.size_after, 160);
    }

    #[test]
    fn out_of_order_commits_delay_reveal() {
        // §III-A.5: "the order in which new snapshots are revealed to the
        // readers must respect the order in which the version numbers have
        // been assigned".
        let vm = vm(64);
        let b = vm.create_blob();
        let t1 = vm.assign(b, WriteIntent::Append { size: 10 }).unwrap();
        let t2 = vm.assign(b, WriteIntent::Append { size: 10 }).unwrap();
        let t3 = vm.assign(b, WriteIntent::Append { size: 10 }).unwrap();
        vm.commit(b, t3.version).unwrap();
        vm.commit(b, t2.version).unwrap();
        assert_eq!(
            vm.latest(b).unwrap().0,
            Version::ZERO,
            "v2 and v3 committed but v1 still in flight"
        );
        assert_eq!(vm.pending_versions(b).unwrap().len(), 3);
        vm.commit(b, t1.version).unwrap();
        assert_eq!(
            vm.latest(b).unwrap(),
            (Version::new(3), 30),
            "all three reveal at once"
        );
        assert!(vm.pending_versions(b).unwrap().is_empty());
    }

    #[test]
    fn write_at_offset_and_growth() {
        let vm = vm(64);
        let b = vm.create_blob();
        let t = vm
            .assign(
                b,
                WriteIntent::Write {
                    offset: 600,
                    size: 100,
                },
            )
            .unwrap();
        assert_eq!(t.entry.size_after, 700);
        assert_eq!(t.entry.blocks, BlockRange::new(9, 11));
        assert_eq!(t.entry.cap_after, 16);
        vm.commit(b, t.version).unwrap();
        // Overwrite inside: size unchanged.
        let t2 = vm
            .assign(
                b,
                WriteIntent::Write {
                    offset: 0,
                    size: 64,
                },
            )
            .unwrap();
        assert_eq!(t2.entry.size_after, 700);
        assert_eq!(t2.entry.cap_before, 16);
        assert_eq!(t2.entry.cap_after, 16);
    }

    #[test]
    fn zero_size_write_rejected() {
        let vm = vm(64);
        let b = vm.create_blob();
        assert!(matches!(
            vm.assign(b, WriteIntent::Append { size: 0 }),
            Err(Error::WriteAborted(_))
        ));
    }

    #[test]
    fn unknown_blob_and_version_errors() {
        let vm = vm(64);
        assert!(matches!(
            vm.latest(BlobId::new(99)),
            Err(Error::NoSuchBlob(99))
        ));
        let b = vm.create_blob();
        assert!(matches!(
            vm.snapshot_info(b, Version::new(5)),
            Err(Error::NoSuchVersion { .. })
        ));
        assert!(matches!(
            vm.commit(b, Version::new(5)),
            Err(Error::NoSuchVersion { .. })
        ));
    }

    #[test]
    fn double_commit_is_an_error() {
        let vm = vm(64);
        let b = vm.create_blob();
        let t = vm.assign(b, WriteIntent::Append { size: 1 }).unwrap();
        vm.commit(b, t.version).unwrap();
        assert!(vm.commit(b, t.version).is_err());
    }

    #[test]
    fn wait_revealed_blocks_until_commit() {
        let vm = Arc::new(vm(64));
        let b = vm.create_blob();
        let t = vm.assign(b, WriteIntent::Append { size: 1 }).unwrap();
        let v = t.version;
        let vm2 = Arc::clone(&vm);
        let waiter = std::thread::spawn(move || vm2.wait_revealed(b, v, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        vm.commit(b, v).unwrap();
        waiter.join().unwrap().unwrap();
    }

    #[test]
    fn wait_revealed_times_out() {
        let vm = vm(64);
        let b = vm.create_blob();
        let t = vm.assign(b, WriteIntent::Append { size: 1 }).unwrap();
        let err = vm
            .wait_revealed(b, t.version, Duration::from_millis(10))
            .unwrap_err();
        assert!(matches!(err, Error::Timeout(_)));
    }

    #[test]
    fn branch_shares_history_and_diverges() {
        let vm = vm(64);
        let b = vm.create_blob();
        for _ in 0..3 {
            let t = vm.assign(b, WriteIntent::Append { size: 64 }).unwrap();
            vm.commit(b, t.version).unwrap();
        }
        let fork = vm.branch(b, Version::new(2)).unwrap();
        // The fork sees version 2's geometry...
        assert_eq!(vm.latest(fork).unwrap(), (Version::new(2), 128));
        let info = vm.snapshot_info(fork, Version::new(2)).unwrap();
        assert_eq!(
            info.root_blob, b,
            "inherited root belongs to the parent lineage"
        );
        // ...and continues independently with version 3 of its own.
        let t = vm.assign(fork, WriteIntent::Append { size: 64 }).unwrap();
        assert_eq!(t.version, Version::new(3));
        assert_eq!(t.offset, 128, "fork appends at the branch-point size");
        vm.commit(fork, t.version).unwrap();
        assert_eq!(vm.latest(fork).unwrap(), (Version::new(3), 192));
        // Parent unaffected.
        assert_eq!(vm.latest(b).unwrap(), (Version::new(3), 192));
        let parent_info = vm.snapshot_info(b, Version::new(3)).unwrap();
        let fork_info = vm.snapshot_info(fork, Version::new(3)).unwrap();
        assert_eq!(parent_info.root_blob, b);
        assert_eq!(fork_info.root_blob, fork);
    }

    #[test]
    fn branch_of_unrevealed_version_is_rejected() {
        let vm = vm(64);
        let b = vm.create_blob();
        let t = vm.assign(b, WriteIntent::Append { size: 1 }).unwrap();
        assert!(matches!(
            vm.branch(b, t.version),
            Err(Error::VersionNotRevealed { .. })
        ));
        assert!(matches!(
            vm.branch(b, Version::new(9)),
            Err(Error::NoSuchVersion { .. })
        ));
    }

    #[test]
    fn branch_of_branch_resolves_deep_ancestry() {
        let vm = vm(64);
        let a = vm.create_blob();
        let t = vm.assign(a, WriteIntent::Append { size: 64 }).unwrap();
        vm.commit(a, t.version).unwrap();
        let b = vm.branch(a, Version::new(1)).unwrap();
        let t = vm.assign(b, WriteIntent::Append { size: 64 }).unwrap();
        vm.commit(b, t.version).unwrap();
        let c = vm.branch(b, Version::new(2)).unwrap();
        // c resolves v1 via a, v2 via b.
        assert_eq!(vm.snapshot_info(c, Version::new(1)).unwrap().root_blob, a);
        assert_eq!(vm.snapshot_info(c, Version::new(2)).unwrap().root_blob, b);
        assert_eq!(vm.latest(c).unwrap(), (Version::new(2), 128));
    }

    #[test]
    fn collect_before_returns_roots_and_blocks_reads() {
        let vm = vm(64);
        let b = vm.create_blob();
        for _ in 0..4 {
            let t = vm.assign(b, WriteIntent::Append { size: 64 }).unwrap();
            vm.commit(b, t.version).unwrap();
        }
        let roots = vm.collect_before(b, Version::new(3)).unwrap();
        assert_eq!(roots.len(), 2, "v1 and v2 collected");
        assert_eq!(roots[0].version, Version::new(1));
        assert_eq!(roots[1].version, Version::new(2));
        assert!(matches!(
            vm.snapshot_info(b, Version::new(1)),
            Err(Error::NoSuchVersion { .. })
        ));
        assert!(vm.snapshot_info(b, Version::new(3)).is_ok());
        // Idempotent: nothing more to collect below 3.
        assert!(vm.collect_before(b, Version::new(3)).unwrap().is_empty());
        // Never collects the latest revealed version.
        let roots = vm.collect_before(b, Version::new(99)).unwrap();
        assert_eq!(roots.len(), 1, "only v3; v4 is the latest revealed");
    }

    #[test]
    fn concurrent_assign_commit_stress() {
        let vm = Arc::new(vm(64));
        let b = vm.create_blob();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let vm = Arc::clone(&vm);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        let t = vm.assign(b, WriteIntent::Append { size: 64 }).unwrap();
                        vm.commit(b, t.version).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let (v, size) = vm.latest(b).unwrap();
        assert_eq!(v, Version::new(400));
        assert_eq!(size, 400 * 64);
        // Every version's geometry is a consistent prefix sum.
        for i in 1..=400u64 {
            let info = vm.snapshot_info(b, Version::new(i)).unwrap();
            assert_eq!(info.size, i * 64);
            assert!(info.revealed);
        }
    }
}
