//! Version garbage collection (§III-A.1: past versions remain accessible
//! "at least as long as they have not been garbaged for the sake of storage
//! space").
//!
//! Subtree sharing means a tree node may be reachable from many snapshot
//! roots, so nodes are reference-counted:
//!
//! * publishing a tree node increments the refcount of every child it
//!   references (including "predicted" children that do not exist yet —
//!   counts are independent of DHT presence);
//! * committing a version registers one reference on its root;
//! * branching registers one reference on the branch point's root.
//!
//! Collecting a version drops its root reference and cascades: a node whose
//! count reaches zero is deleted from the DHT, its children are released,
//! and a deleted leaf deletes its data block from all replica providers
//! (blocks are owned by exactly one leaf — abort repair shares leaves via
//! aliases, never by duplicating descriptors).

use crate::client::push_grouped;
use crate::exec::FanoutExecutor;
use crate::meta::key::NodeKey;
use crate::meta::node::TreeNode;
use crate::ports::{BlockStore, GcService, MetaStore, PlacementService};
use crate::sharded::{ShardedMap, DEFAULT_SHARDS};
use crate::stats::EngineStats;
use blobseer_types::{BlockId, Result};
use std::collections::HashMap;
use std::sync::Arc;

/// Outcome of a collection pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Metadata nodes deleted from the DHT.
    pub nodes_deleted: u64,
    /// Data blocks deleted from providers.
    pub blocks_deleted: u64,
    /// Payload bytes freed (primary copies; replicas add on top).
    pub bytes_freed: u64,
    /// Releases of nodes the tracker never counted a reference for. Each
    /// one is a refcount bug — a double release, or a publish that skipped
    /// its `inc_node` — and the node's subtree leaks (the release stops
    /// there instead of cascading). The seed `debug_assert!`ed here, so
    /// release builds hid these as silent permanent leaks; now they are
    /// counted and surfaced through `EngineStats::gc_untracked_releases`.
    pub untracked_releases: u64,
}

impl GcReport {
    /// Merges another report into this one.
    pub fn merge(&mut self, other: GcReport) {
        self.nodes_deleted += other.nodes_deleted;
        self.blocks_deleted += other.blocks_deleted;
        self.bytes_freed += other.bytes_freed;
        self.untracked_releases += other.untracked_releases;
    }
}

/// Reference counts for tree nodes. The map is the hot companion of the
/// tree store — every publish touches it for each child reference — so it
/// is lock-striped like the data/metadata maps.
#[derive(Debug)]
pub struct GcTracker {
    node_rc: ShardedMap<NodeKey, u64>,
}

impl Default for GcTracker {
    fn default() -> Self {
        Self {
            node_rc: ShardedMap::named(DEFAULT_SHARDS, "gc.node_rc"),
        }
    }
}

impl GcTracker {
    /// Fresh tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one reference to a node (child reference, root registration or
    /// branch registration). The node need not exist in the DHT yet.
    pub fn inc_node(&self, key: NodeKey) {
        *self.node_rc.shard_for(&key).write().entry(key).or_insert(0) += 1;
    }

    /// Current count (0 if never referenced) — for tests and diagnostics.
    pub fn node_count(&self, key: &NodeKey) -> u64 {
        self.node_rc.get_cloned(key).unwrap_or(0)
    }

    /// Number of tracked (non-zero) entries.
    pub fn tracked_nodes(&self) -> usize {
        self.node_rc.len()
    }

    /// Releases one reference on `root` and cascades deletion of every node
    /// and block that becomes unreachable. Works against any backend
    /// through the [`MetaStore`]/[`BlockStore`] ports.
    ///
    /// The cascade is level-synchronous and vectored: refcounts are
    /// decremented locally, then every node freed in one wave is fetched
    /// with a single [`MetaStore::get_many`], deleted with a single
    /// [`MetaStore::delete_many`], and the dead leaves' blocks are deleted
    /// with one [`BlockStore::delete_many`] per provider — issued
    /// concurrently through the deployment's fan-out executor — so
    /// collecting a whole version costs O(tree levels) round trips plus
    /// one *parallel* provider wave per level on a remote backend instead
    /// of O(nodes + blocks).
    pub fn release_root(
        &self,
        root: NodeKey,
        dht: &dyn MetaStore,
        providers: &Arc<dyn BlockStore>,
        pm: &dyn PlacementService,
        stats: &EngineStats,
        exec: &FanoutExecutor,
    ) -> Result<GcReport> {
        let mut report = GcReport::default();
        let mut frontier = vec![root];
        while !frontier.is_empty() {
            // Refcount wave: pure local bookkeeping, no backend calls.
            let mut freed: Vec<NodeKey> = Vec::new();
            for key in std::mem::take(&mut frontier) {
                let mut rc = self.node_rc.shard_for(&key).write();
                match rc.get_mut(&key) {
                    Some(c) if *c > 1 => *c -= 1,
                    Some(_) => {
                        rc.remove(&key);
                        freed.push(key);
                    }
                    None => {
                        // A refcount bug: nothing to release. Count it so
                        // the leak is observable in every build profile
                        // instead of a debug-only assert that release
                        // builds silently no-op'ed.
                        report.untracked_releases += 1;
                        EngineStats::add(&stats.gc_untracked_releases, 1);
                    }
                }
            }
            if freed.is_empty() {
                continue;
            }
            // The freed nodes are unreachable: fetch the wave to discover
            // children, then delete it and release what it referenced. A
            // failed fetch aborts the cascade after this wave (matching
            // the old node-at-a-time fail-fast), without deleting the
            // nodes it could not inspect.
            let mut fetched: Vec<(NodeKey, TreeNode)> = Vec::with_capacity(freed.len());
            let mut first_err = None;
            for (key, result) in freed.iter().zip(dht.get_many(&freed)) {
                match result {
                    Ok(node) => fetched.push((*key, node)),
                    Err(e) => {
                        first_err = Some(e);
                        break;
                    }
                }
            }
            let dead: Vec<NodeKey> = fetched.iter().map(|(k, _)| *k).collect();
            let _ = dht.delete_many(&dead);
            report.nodes_deleted += dead.len() as u64;
            EngineStats::add(&stats.meta_nodes_collected, dead.len() as u64);
            let mut block_dels: Vec<(usize, Vec<BlockId>)> = Vec::new();
            let mut freed_of: HashMap<BlockId, u64> = HashMap::new();
            let mut released: Vec<usize> = Vec::new();
            for (key, node) in fetched {
                match node {
                    TreeNode::Inner { left, right } => {
                        if let Some(r) = left {
                            frontier.push(NodeKey::new(r.blob, r.version, key.pos.left()));
                        }
                        if let Some(r) = right {
                            frontier.push(NodeKey::new(r.blob, r.version, key.pos.right()));
                        }
                    }
                    TreeNode::LeafAlias(target) => {
                        if let Some(r) = target {
                            frontier.push(NodeKey::new(r.blob, r.version, key.pos));
                        }
                    }
                    TreeNode::Leaf(desc) => {
                        report.blocks_deleted += 1;
                        EngineStats::add(&stats.blocks_collected, 1);
                        freed_of.insert(desc.block_id, 0);
                        for &p in &desc.providers {
                            push_grouped(&mut block_dels, p as usize, desc.block_id);
                            released.push(p as usize);
                        }
                    }
                }
            }
            // One batched load release per wave — a single control frame
            // against a hosted placement service instead of one frame per
            // replica of every dead block.
            if !released.is_empty() {
                pm.release_many(&released)?;
            }
            if !block_dels.is_empty() {
                stats.record_fanout(block_dels.len());
            }
            let jobs: Vec<_> = block_dels
                .into_iter()
                .map(|(provider, ids)| {
                    let providers = Arc::clone(providers);
                    move || {
                        let results = providers.delete_many(provider, &ids);
                        (ids, results)
                    }
                })
                .collect();
            for (ids, results) in exec.fanout(jobs) {
                for (&id, result) in ids.iter().zip(results) {
                    // Bytes are counted once per block (primary copies):
                    // take the max over replicas, treating an unreachable
                    // replica as 0 freed.
                    let n = result.unwrap_or(0);
                    freed_of.entry(id).and_modify(|m| *m = (*m).max(n));
                }
            }
            report.bytes_freed += freed_of.values().sum::<u64>();
            if let Some(e) = first_err {
                return Err(e);
            }
        }
        Ok(report)
    }
}

/// Server-side host for the [`GcService`] port: a [`GcTracker`] wired to
/// the storage ports its cascades delete through. Deployments that keep
/// everything in one process embed a `GcHost` directly
/// (`client::deploy_ports` builds one when no external GC service is
/// given); an RPC cluster hosts one behind a `blobseer-rpc` server so all
/// client processes share a single, globally consistent refcount table.
pub struct GcHost {
    tracker: GcTracker,
    dht: Arc<dyn MetaStore>,
    providers: Arc<dyn BlockStore>,
    pm: Arc<dyn PlacementService>,
    stats: Arc<EngineStats>,
    exec: Arc<FanoutExecutor>,
}

impl std::fmt::Debug for GcHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GcHost")
            .field("tracker", &self.tracker)
            .finish_non_exhaustive()
    }
}

impl GcHost {
    /// Builds a host over the given storage and placement ports. Cascade
    /// deletions run through `exec`; deletion counters land on `stats`.
    pub fn new(
        dht: Arc<dyn MetaStore>,
        providers: Arc<dyn BlockStore>,
        pm: Arc<dyn PlacementService>,
        stats: Arc<EngineStats>,
        exec: Arc<FanoutExecutor>,
    ) -> Self {
        Self {
            tracker: GcTracker::new(),
            dht,
            providers,
            pm,
            stats,
            exec,
        }
    }
}

impl GcService for GcHost {
    fn inc_nodes(&self, keys: &[NodeKey]) -> Result<()> {
        for &key in keys {
            self.tracker.inc_node(key);
        }
        Ok(())
    }

    fn release_roots(&self, roots: &[NodeKey]) -> Result<GcReport> {
        let mut total = GcReport::default();
        for &root in roots {
            total.merge(self.tracker.release_root(
                root,
                self.dht.as_ref(),
                &self.providers,
                self.pm.as_ref(),
                &self.stats,
                &self.exec,
            )?);
        }
        Ok(total)
    }

    fn node_count(&self, key: &NodeKey) -> Result<u64> {
        Ok(self.tracker.node_count(key))
    }

    fn tracked_nodes(&self) -> Result<usize> {
        Ok(self.tracker.tracked_nodes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_store::ProviderSet;
    use crate::dht::MetaDht;
    use crate::meta::key::Pos;
    use crate::meta::node::{BlockDescriptor, NodeRef};
    use crate::provider_manager::ProviderManager;
    use blobseer_types::config::PlacementPolicy;
    use blobseer_types::{BlobId, BlockId, NodeId, Version};
    use bytes::Bytes;

    struct Fixture {
        dht: MetaDht,
        providers: Arc<ProviderSet>,
        pm: ProviderManager,
        stats: EngineStats,
        gc: GcTracker,
        exec: FanoutExecutor,
    }

    fn fixture() -> Fixture {
        Fixture {
            dht: MetaDht::new(4, 1),
            providers: Arc::new(ProviderSet::new(2, |i| NodeId::new(i as u64))),
            pm: ProviderManager::new(2, PlacementPolicy::RoundRobin, 0),
            stats: EngineStats::new(),
            gc: GcTracker::new(),
            exec: FanoutExecutor::new(2),
        }
    }

    impl Fixture {
        fn release(&self, root: NodeKey) -> Result<GcReport> {
            let providers: Arc<dyn BlockStore> = Arc::clone(&self.providers) as _;
            self.gc.release_root(
                root,
                &self.dht,
                &providers,
                &self.pm,
                &self.stats,
                &self.exec,
            )
        }
    }

    fn key(v: u64, start: u64, len: u64) -> NodeKey {
        NodeKey::new(BlobId::new(1), Version::new(v), Pos::new(start, len))
    }

    fn nref(v: u64) -> Option<NodeRef> {
        Some(NodeRef {
            blob: BlobId::new(1),
            version: Version::new(v),
        })
    }

    /// Builds: v1 root(0,2) → leaves (0,1) and (1,1); v2 root(0,2) → new
    /// leaf (0,1) and shares v1's (1,1).
    fn build_two_versions(f: &Fixture) {
        for (v, start, block) in [(1u64, 0u64, 10u64), (1, 1, 11), (2, 0, 12)] {
            let desc = BlockDescriptor {
                block_id: BlockId::new(block),
                providers: vec![0],
                len: 4,
            };
            f.providers
                .get(0)
                .put(BlockId::new(block), Bytes::from_static(b"data"));
            f.dht.put(key(v, start, 1), TreeNode::Leaf(desc)).unwrap();
        }
        f.dht
            .put(
                key(1, 0, 2),
                TreeNode::Inner {
                    left: nref(1),
                    right: nref(1),
                },
            )
            .unwrap();
        f.gc.inc_node(key(1, 0, 1));
        f.gc.inc_node(key(1, 1, 1));
        f.dht
            .put(
                key(2, 0, 2),
                TreeNode::Inner {
                    left: nref(2),
                    right: nref(1),
                },
            )
            .unwrap();
        f.gc.inc_node(key(2, 0, 1));
        f.gc.inc_node(key(1, 1, 1)); // shared leaf now rc=2
                                     // Root registrations.
        f.gc.inc_node(key(1, 0, 2));
        f.gc.inc_node(key(2, 0, 2));
    }

    #[test]
    fn collecting_old_version_keeps_shared_leaves() {
        let f = fixture();
        build_two_versions(&f);
        let report = f.release(key(1, 0, 2)).unwrap();
        // v1's root and its private leaf (0,1) die; the shared leaf (1,1)
        // survives with rc 1.
        assert_eq!(report.nodes_deleted, 2);
        assert_eq!(report.blocks_deleted, 1);
        assert!(f.dht.get(&key(1, 0, 2)).is_err());
        assert!(f.dht.get(&key(1, 0, 1)).is_err());
        assert!(f.dht.get(&key(1, 1, 1)).is_ok(), "shared leaf must survive");
        assert!(f.providers.get(0).contains(BlockId::new(11)));
        assert!(!f.providers.get(0).contains(BlockId::new(10)));
        // v2 still fully intact.
        assert!(f.dht.get(&key(2, 0, 2)).is_ok());
        assert!(f.dht.get(&key(2, 0, 1)).is_ok());
    }

    #[test]
    fn collecting_both_versions_empties_everything() {
        let f = fixture();
        build_two_versions(&f);
        let mut total = GcReport::default();
        total.merge(f.release(key(1, 0, 2)).unwrap());
        total.merge(f.release(key(2, 0, 2)).unwrap());
        assert_eq!(total.nodes_deleted, 5, "2 roots + 3 leaves");
        assert_eq!(total.blocks_deleted, 3);
        assert_eq!(total.bytes_freed, 12);
        assert_eq!(f.dht.node_count(), 0);
        assert_eq!(f.providers.get(0).block_count(), 0);
        assert_eq!(f.gc.tracked_nodes(), 0);
        assert_eq!(f.stats.snapshot().meta_nodes_collected, 5);
        assert_eq!(f.stats.snapshot().blocks_collected, 3);
    }

    #[test]
    fn untracked_release_is_counted_not_silent() {
        let f = fixture();
        build_two_versions(&f);
        // Releasing a root the tracker never heard of must not panic, must
        // not touch healthy state, and must be visible in the report and
        // the engine counters (the seed's debug_assert no-op'ed in release
        // builds, hiding the refcount bug as a permanent leak).
        let bogus = key(9, 0, 2);
        let report = f.release(bogus).unwrap();
        assert_eq!(report.untracked_releases, 1);
        assert_eq!(report.nodes_deleted, 0);
        assert_eq!(f.stats.snapshot().gc_untracked_releases, 1);
        assert_eq!(f.dht.node_count(), 5, "healthy metadata untouched");
        // A double release of a real root: the first pass frees it, the
        // second is untracked and counted.
        f.release(key(1, 0, 2)).unwrap();
        let report = f.release(key(1, 0, 2)).unwrap();
        assert_eq!(report.untracked_releases, 1);
        assert_eq!(f.stats.snapshot().gc_untracked_releases, 2);
        // Reports merge the new counter too.
        let mut total = GcReport::default();
        total.merge(report);
        assert_eq!(total.untracked_releases, 1);
    }

    #[test]
    fn gc_host_serves_the_port_end_to_end() {
        // The same two-version scenario, but driven exclusively through the
        // GcService port of a GcHost (the shape a hosted deployment uses).
        let dht = Arc::new(MetaDht::new(4, 1));
        let providers = Arc::new(ProviderSet::new(2, |i| NodeId::new(i as u64)));
        let pm = Arc::new(ProviderManager::new(2, PlacementPolicy::RoundRobin, 0));
        let stats = Arc::new(EngineStats::new());
        let host = GcHost::new(
            Arc::clone(&dht) as Arc<dyn MetaStore>,
            Arc::clone(&providers) as Arc<dyn BlockStore>,
            Arc::clone(&pm) as Arc<dyn PlacementService>,
            Arc::clone(&stats),
            Arc::new(FanoutExecutor::new(2)),
        );
        let desc = BlockDescriptor {
            block_id: BlockId::new(30),
            providers: vec![0],
            len: 4,
        };
        providers
            .get(0)
            .put(BlockId::new(30), Bytes::from_static(b"data"));
        dht.put(key(1, 0, 1), TreeNode::Leaf(desc)).unwrap();
        host.inc_nodes(&[key(1, 0, 1)]).unwrap();
        assert_eq!(host.node_count(&key(1, 0, 1)).unwrap(), 1);
        assert_eq!(host.tracked_nodes().unwrap(), 1);
        let report = host.release_roots(&[key(1, 0, 1)]).unwrap();
        assert_eq!(report.nodes_deleted, 1);
        assert_eq!(report.blocks_deleted, 1);
        assert_eq!(report.bytes_freed, 4);
        assert_eq!(host.tracked_nodes().unwrap(), 0);
        assert!(!providers.get(0).contains(BlockId::new(30)));
        assert_eq!(stats.snapshot().blocks_collected, 1);
    }

    #[test]
    fn bare_tracker_refuses_to_cascade() {
        let gc = GcTracker::new();
        let svc: &dyn GcService = &gc;
        svc.inc_nodes(&[key(1, 0, 1), key(1, 1, 1)]).unwrap();
        assert_eq!(svc.node_count(&key(1, 0, 1)).unwrap(), 1);
        let err = svc.release_roots(&[key(1, 0, 1)]).unwrap_err();
        assert!(matches!(err, blobseer_types::Error::Internal(_)), "{err}");
    }

    #[test]
    fn alias_release_cascades_to_target() {
        let f = fixture();
        // Leaf of v1 (rc: alias + root of v1).
        let desc = BlockDescriptor {
            block_id: BlockId::new(20),
            providers: vec![1],
            len: 4,
        };
        f.providers
            .get(1)
            .put(BlockId::new(20), Bytes::from_static(b"xyzw"));
        f.dht.put(key(1, 0, 1), TreeNode::Leaf(desc)).unwrap();
        f.gc.inc_node(key(1, 0, 1)); // referenced as v1 root below
                                     // v2 repairs with an alias to v1's leaf.
        f.dht
            .put(key(2, 0, 1), TreeNode::LeafAlias(nref(1)))
            .unwrap();
        f.gc.inc_node(key(1, 0, 1)); // alias reference
        f.gc.inc_node(key(2, 0, 1)); // v2 root registration (leaf is root here)

        // Release v2: the alias dies, v1's leaf survives (still v1's root).
        f.release(key(2, 0, 1)).unwrap();
        assert!(f.dht.get(&key(1, 0, 1)).is_ok());
        assert!(f.providers.get(1).contains(BlockId::new(20)));
        // Release v1: everything goes.
        f.release(key(1, 0, 1)).unwrap();
        assert!(f.dht.get(&key(1, 0, 1)).is_err());
        assert!(!f.providers.get(1).contains(BlockId::new(20)));
    }
}
