//! Building and traversing the versioned distributed segment trees.
//!
//! **Publishing** (§III-D): after the data blocks are stored and the version
//! manager assigned a version number, the writer generates the tree nodes
//! that its write materializes (see `meta::log` for the rule) and weaves
//! them with existing metadata: every child outside the written range is a
//! *reference* to the latest lower version materializing that position —
//! computed purely from the write log, so references to still-in-flight
//! concurrent writers work ("the client is able to predict the values
//! corresponding to the metadata that is being written", §III-D).
//!
//! **Reading** (§III-C): descend from the root of the requested snapshot,
//! following child references across versions, visiting only subtrees that
//! intersect the requested range, and collect leaf block descriptors.

use super::key::{BlockRange, NodeKey, Pos};
use super::log::{LogChain, LogEntry};
use super::node::{BlockDescriptor, NodeRef, TreeNode};
use crate::exec::FanoutExecutor;
use crate::ports::{GcService, MetaStore};
use crate::sharded::group_indices_by;
use crate::stats::EngineStats;
use blobseer_types::{BlobId, Error, Result, Version};
use std::collections::HashMap;
use std::sync::Arc;

/// A located block within a snapshot: its index and the descriptor of the
/// stored block covering it (`None` = never-written hole, reads as zeros).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LocatedBlock {
    /// Block index within the BLOB.
    pub index: u64,
    /// Descriptor, or `None` for a hole.
    pub desc: Option<BlockDescriptor>,
}

/// How to populate the leaves a write materializes.
enum LeafMode<'a> {
    /// Normal write: leaves carry the freshly stored blocks.
    Blocks(&'a HashMap<u64, BlockDescriptor>),
    /// Abort repair: leaves alias the previous version's leaves, restoring
    /// prior content without any data movement.
    Repair,
}

/// Per-publish state threaded through the [`TreeStore::build`] recursion:
/// what is being published, and the per-depth node batches it produces.
struct BuildCx<'a, 'b> {
    blob: BlobId,
    entry: &'a LogEntry,
    chain: &'a LogChain,
    mode: &'a LeafMode<'b>,
    levels: Vec<Vec<(NodeKey, TreeNode)>>,
    /// GC child references the build discovers, registered with a single
    /// batched [`GcService::inc_nodes`] call (one control frame against a
    /// hosted refcount service instead of one per reference).
    incs: Vec<NodeKey>,
}

/// Metadata operations bound to one deployment's metadata backend (any
/// [`MetaStore`] adapter), GC service, stats and fan-out executor.
#[derive(Clone, Copy)]
pub struct TreeStore<'a> {
    pub dht: &'a Arc<dyn MetaStore>,
    pub gc: &'a Arc<dyn GcService>,
    pub stats: &'a EngineStats,
    pub exec: &'a FanoutExecutor,
}

impl<'a> TreeStore<'a> {
    /// One level's vectored put, fanned out across the backend's
    /// independently reachable DHT shards ([`MetaStore::fanout_shard`];
    /// single-endpoint backends keep exactly one `put_many` per level).
    /// Results come back in input order.
    fn put_level(&self, level: &[(NodeKey, TreeNode)]) -> Vec<Result<()>> {
        let groups = group_indices_by(level.iter().map(|(key, _)| *key), |key| {
            self.dht.fanout_shard(key)
        });
        self.stats.record_fanout(groups.len());
        if groups.len() <= 1 {
            return self.dht.put_many(level);
        }
        let jobs: Vec<_> = groups
            .iter()
            .map(|(_, indices)| {
                let dht = Arc::clone(self.dht);
                let items: Vec<(NodeKey, TreeNode)> =
                    indices.iter().map(|&i| level[i].clone()).collect();
                move || dht.put_many(&items)
            })
            .collect();
        let mut out: Vec<Option<Result<()>>> = (0..level.len()).map(|_| None).collect();
        for ((_, indices), results) in groups.iter().zip(self.exec.fanout(jobs)) {
            for (&i, result) in indices.iter().zip(results) {
                out[i] = Some(result);
            }
        }
        out.into_iter()
            .map(|slot| slot.expect("every level item grouped exactly once")) // lint:allow(no-unwrap): grouping assigns each item to exactly one slot
            .collect()
    }

    /// One level's vectored fetch, fanned out across DHT shards like
    /// [`Self::put_level`]. Results come back in input order.
    fn get_level(&self, keys: &[NodeKey]) -> Vec<Result<TreeNode>> {
        let groups = group_indices_by(keys.iter().copied(), |key| self.dht.fanout_shard(key));
        self.stats.record_fanout(groups.len());
        if groups.len() <= 1 {
            return self.dht.get_many(keys);
        }
        let jobs: Vec<_> = groups
            .iter()
            .map(|(_, indices)| {
                let dht = Arc::clone(self.dht);
                let subset: Vec<NodeKey> = indices.iter().map(|&i| keys[i]).collect();
                move || dht.get_many(&subset)
            })
            .collect();
        let mut out: Vec<Option<Result<TreeNode>>> = (0..keys.len()).map(|_| None).collect();
        for ((_, indices), results) in groups.iter().zip(self.exec.fanout(jobs)) {
            for (&i, result) in indices.iter().zip(results) {
                out[i] = Some(result);
            }
        }
        out.into_iter()
            .map(|slot| slot.expect("every frontier key grouped exactly once")) // lint:allow(no-unwrap): grouping assigns each key to exactly one slot
            .collect()
    }
    /// Publishes the metadata of a normal write. `leaves` maps each block
    /// index in `entry.blocks` to its descriptor. Returns the new root key.
    ///
    /// Fails when the backend rejects a node put (a conflicting re-put —
    /// [`Error::MetadataConflict`] — or an injected fault); nodes already
    /// published stay in place, exactly like a writer that crashed halfway
    /// through its metadata phase (§VI-B).
    pub fn publish_write(
        &self,
        blob: BlobId,
        entry: &LogEntry,
        chain: &LogChain,
        leaves: &HashMap<u64, BlockDescriptor>,
    ) -> Result<NodeKey> {
        debug_assert!(
            entry.blocks.iter().all(|b| leaves.contains_key(&b)),
            "every written block needs a descriptor"
        );
        self.publish(blob, entry, chain, LeafMode::Blocks(leaves))
    }

    /// Publishes *repair* metadata for an aborted write: the same node
    /// positions a normal write would create, but every leaf aliases the
    /// previous version's content. Readers of this version observe the
    /// previous snapshot's bytes over the aborted range (zeros where the
    /// range extended the BLOB). Returns the new root key.
    pub fn publish_repair(
        &self,
        blob: BlobId,
        entry: &LogEntry,
        chain: &LogChain,
    ) -> Result<NodeKey> {
        self.publish(blob, entry, chain, LeafMode::Repair)
    }

    fn publish(
        &self,
        blob: BlobId,
        entry: &LogEntry,
        chain: &LogChain,
        mode: LeafMode<'_>,
    ) -> Result<NodeKey> {
        let root = Pos::root(entry.cap_after);
        debug_assert!(
            entry.materializes(root),
            "a write always materializes its root"
        );
        // Build every materialized node locally first — weaving is pure
        // write-log computation (§III-D: "the client is able to predict
        // the values corresponding to the metadata that is being
        // written") — grouped by tree depth.
        let mut cx = BuildCx {
            blob,
            entry,
            chain,
            mode: &mode,
            levels: Vec::new(),
            incs: Vec::new(),
        };
        let r = self.build(&mut cx, root, 0);
        debug_assert_eq!(
            r,
            Some(NodeRef {
                blob,
                version: entry.version
            })
        );
        // Count every child reference the new tree will hold *before* any
        // node is published: if a node lands in the DHT, its references are
        // already protected from a concurrent collection wave.
        if !cx.incs.is_empty() {
            self.gc.inc_nodes(&cx.incs)?;
        }
        let levels = cx.levels;
        // Publish one vectored put per level, deepest first: children land
        // before the parents that reference them, exactly like the old
        // node-at-a-time post-order publish, but a remote backend now pays
        // one round trip per level instead of one per node — and backends
        // with independently reachable shards split each level's put
        // across them concurrently (put_level). The level barrier stays: a
        // parent level is only dispatched once the whole child level
        // settled. A failed item leaves already-published nodes in place
        // (the crashed-writer shape of §VI-B).
        let is_repair = matches!(mode, LeafMode::Repair);
        for level in levels.iter().rev() {
            let mut first_err = None;
            let mut conflicts: Vec<usize> = Vec::new();
            for (i, result) in self.put_level(level).into_iter().enumerate() {
                match result {
                    Ok(()) => EngineStats::add(&self.stats.meta_nodes_written, 1),
                    Err(Error::MetadataConflict(_)) if is_repair => conflicts.push(i),
                    Err(e) if first_err.is_none() => first_err = Some(e),
                    Err(_) => {}
                }
            }
            // A repair owns its version's keys — no other writer ever
            // publishes under this (blob, version). A conflicting node at
            // one of them is a remnant of the aborted attempt (a batched
            // publish fails per item, so sibling nodes of the failed one
            // may have landed): force-replace it with the alias metadata,
            // or a transiently refused put would strand the version
            // forever behind its own half-published tree.
            if !conflicts.is_empty() {
                let keys: Vec<NodeKey> = conflicts.iter().map(|&i| level[i].0).collect();
                let _ = self.dht.delete_many(&keys);
                let retry: Vec<(NodeKey, TreeNode)> =
                    conflicts.iter().map(|&i| level[i].clone()).collect();
                for result in self.dht.put_many(&retry) {
                    match result {
                        Ok(()) => EngineStats::add(&self.stats.meta_nodes_written, 1),
                        Err(e) if first_err.is_none() => first_err = Some(e),
                        Err(_) => {}
                    }
                }
            }
            if let Some(e) = first_err {
                return Err(e);
            }
        }
        Ok(NodeKey::new(blob, entry.version, root))
    }

    /// Recursively materializes `pos` if the write covers it — appending
    /// the node to its depth's batch in `cx.levels` — else returns a woven
    /// reference to the latest earlier materializer.
    fn build(&self, cx: &mut BuildCx<'_, '_>, pos: Pos, depth: usize) -> Option<NodeRef> {
        if !cx.entry.materializes(pos) {
            // Weave: reference the latest lower version materializing this
            // position (possibly still being written by a concurrent
            // writer), or a hole.
            return cx
                .chain
                .materializer_before(pos, cx.entry.version)
                .map(|m| NodeRef {
                    blob: m.blob,
                    version: m.version,
                });
        }
        let key = NodeKey::new(cx.blob, cx.entry.version, pos);
        let node = if pos.is_leaf() {
            match cx.mode {
                LeafMode::Blocks(leaves) => {
                    let desc = leaves
                        .get(&pos.start)
                        .expect("materialized leaf must have a descriptor") // lint:allow(no-unwrap): LeafMode::Blocks materializes a descriptor per leaf
                        .clone();
                    TreeNode::Leaf(desc)
                }
                LeafMode::Repair => {
                    let target = cx
                        .chain
                        .materializer_before(pos, cx.entry.version)
                        .map(|m| NodeRef {
                            blob: m.blob,
                            version: m.version,
                        });
                    if let Some(t) = target {
                        cx.incs.push(NodeKey::new(t.blob, t.version, pos));
                    }
                    TreeNode::LeafAlias(target)
                }
            }
        } else {
            let left = self.build(cx, pos.left(), depth + 1);
            let right = self.build(cx, pos.right(), depth + 1);
            if let Some(l) = left {
                cx.incs.push(NodeKey::new(l.blob, l.version, pos.left()));
            }
            if let Some(r) = right {
                cx.incs.push(NodeKey::new(r.blob, r.version, pos.right()));
            }
            TreeNode::Inner { left, right }
        };
        if cx.levels.len() <= depth {
            cx.levels.resize_with(depth + 1, Vec::new);
        }
        cx.levels[depth].push((key, node));
        Some(NodeRef {
            blob: cx.blob,
            version: cx.entry.version,
        })
    }

    /// Registers the root of a committed version (one GC reference — one
    /// control frame against a hosted refcount service).
    pub fn register_root(&self, root: NodeKey) -> Result<()> {
        self.gc.inc_nodes(&[root])
    }

    /// Locates the blocks covering `query` in the snapshot rooted at
    /// `(root_blob, version)` with tree capacity `cap` blocks.
    ///
    /// Returns one entry per block in `query`, in increasing index order;
    /// holes yield `desc: None`.
    ///
    /// The descent is level-synchronous: every node of one tree level that
    /// intersects the query is fetched with one [`MetaStore::get_many`]
    /// per reachable DHT shard, issued concurrently through the fan-out
    /// executor — hops between levels stay sequential (a
    /// child reference is only known once its parent arrived, §III-C), but
    /// a remote backend pays one round trip per level instead of one per
    /// node. Alias chains extend the frontier at the same position, so a
    /// chain of `k` aliases adds `k` extra rounds for those entries only.
    pub fn locate(
        &self,
        root_blob: BlobId,
        version: Version,
        cap: u64,
        query: BlockRange,
    ) -> Result<Vec<LocatedBlock>> {
        if query.is_empty() {
            return Ok(Vec::new());
        }
        if cap == 0 {
            return Err(Error::Internal(format!(
                "locate on empty tree for {root_blob} {version}"
            )));
        }
        let mut slots: Vec<Option<LocatedBlock>> = vec![None; query.len() as usize];
        let slot_of = |index: u64| (index - query.start) as usize;
        let mut frontier = vec![NodeKey::new(root_blob, version, Pos::root(cap))];
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for (key, fetched) in frontier.iter().zip(self.get_level(&frontier)) {
                let node = fetched?;
                EngineStats::add(&self.stats.meta_nodes_read, 1);
                match node {
                    TreeNode::Leaf(desc) => {
                        slots[slot_of(key.pos.start)] = Some(LocatedBlock {
                            index: key.pos.start,
                            desc: Some(desc),
                        });
                    }
                    TreeNode::LeafAlias(Some(target)) => {
                        // Follow the alias chain at the same position.
                        next.push(NodeKey::new(target.blob, target.version, key.pos));
                    }
                    TreeNode::LeafAlias(None) => {
                        slots[slot_of(key.pos.start)] = Some(LocatedBlock {
                            index: key.pos.start,
                            desc: None,
                        });
                    }
                    TreeNode::Inner { left, right } => {
                        for (child_pos, child_ref) in
                            [(key.pos.left(), left), (key.pos.right(), right)]
                        {
                            if !child_pos.intersects(&query) {
                                continue;
                            }
                            match child_ref {
                                Some(r) => {
                                    next.push(NodeKey::new(r.blob, r.version, child_pos));
                                }
                                None => {
                                    // A hole subtree: every queried block
                                    // in it is a hole.
                                    let lo = child_pos.start.max(query.start);
                                    let hi = child_pos.end().min(query.end);
                                    for index in lo..hi {
                                        slots[slot_of(index)] =
                                            Some(LocatedBlock { index, desc: None });
                                    }
                                }
                            }
                        }
                    }
                }
            }
            frontier = next;
        }
        let out: Vec<LocatedBlock> = slots
            .into_iter()
            .map(|s| s.expect("descent covered every queried block")) // lint:allow(no-unwrap): descent covers every queried block or errors earlier
            .collect();
        debug_assert_eq!(out.len() as u64, query.len());
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dht::MetaDht;
    use crate::meta::log::LogSegment;
    use blobseer_types::BlockId;
    use parking_lot::RwLock;
    use std::sync::Arc;

    struct Fx {
        dht: Arc<dyn MetaStore>,
        gc: Arc<dyn GcService>,
        stats: EngineStats,
        exec: FanoutExecutor,
        log: Arc<RwLock<Vec<LogEntry>>>,
        blob: BlobId,
    }

    impl Fx {
        fn new() -> Self {
            Self {
                dht: Arc::new(MetaDht::new(4, 1)),
                gc: Arc::new(crate::gc::GcTracker::new()),
                stats: EngineStats::new(),
                exec: FanoutExecutor::new(2),
                log: Arc::new(RwLock::new(Vec::new())),
                blob: BlobId::new(1),
            }
        }

        fn store(&self) -> TreeStore<'_> {
            TreeStore {
                dht: &self.dht,
                gc: &self.gc,
                stats: &self.stats,
                exec: &self.exec,
            }
        }

        fn chain(&self) -> LogChain {
            LogChain::new(vec![LogSegment::full(
                self.blob,
                Arc::clone(&self.log),
                Version::ZERO,
                Version::new(u64::MAX),
            )])
        }

        /// Assign-then-publish a write of whole blocks [start, end) with
        /// block ids start*100+v.
        fn write(&self, v: u64, start: u64, end: u64) -> NodeKey {
            let (cap_before, size_before) = {
                let log = self.log.read();
                log.last()
                    .map(|e| (e.cap_after, e.size_after))
                    .unwrap_or((0, 0))
            };
            let size_after = size_before.max(end * 64);
            let entry = LogEntry {
                version: Version::new(v),
                blocks: BlockRange::new(start, end),
                cap_before,
                cap_after: size_after.div_ceil(64).next_power_of_two().max(1),
                size_after,
            };
            self.log.write().push(entry);
            let leaves: HashMap<u64, BlockDescriptor> = (start..end)
                .map(|b| {
                    (
                        b,
                        BlockDescriptor {
                            block_id: BlockId::new(b * 100 + v),
                            providers: vec![(b % 3) as u32],
                            len: 64,
                        },
                    )
                })
                .collect();
            self.store()
                .publish_write(self.blob, &entry, &self.chain(), &leaves)
                .unwrap()
        }

        fn blocks_of(&self, v: u64, cap: u64, q: (u64, u64)) -> Vec<Option<u64>> {
            self.store()
                .locate(self.blob, Version::new(v), cap, BlockRange::new(q.0, q.1))
                .unwrap()
                .into_iter()
                .map(|l| l.desc.map(|d| d.block_id.raw()))
                .collect()
        }
    }

    #[test]
    fn paper_figure_1_sequence() {
        // Fig. 1: append 4 blocks, overwrite the first two, append 1 block.
        let fx = Fx::new();
        fx.write(1, 0, 4);
        fx.write(2, 0, 2);
        fx.write(3, 4, 5);
        // v1 sees its own four blocks.
        assert_eq!(
            fx.blocks_of(1, 4, (0, 4)),
            vec![Some(1), Some(101), Some(201), Some(301)]
        );
        // v2 shares blocks 2–3 with v1, replaces 0–1.
        assert_eq!(
            fx.blocks_of(2, 4, (0, 4)),
            vec![Some(2), Some(102), Some(201), Some(301)]
        );
        // v3 (capacity 8) sees v2's front, v1's middle, its own appended block.
        assert_eq!(
            fx.blocks_of(3, 8, (0, 5)),
            vec![Some(2), Some(102), Some(201), Some(301), Some(403)]
        );
        // Node count check against Fig. 1: v1 creates 4 leaves + 2 inner +
        // root = 7; v2 creates 2 leaves + 1 inner + root = 4; v3 creates
        // 1 leaf + (4,2) + (4,4) + new root = 4. Total 15.
        assert_eq!(fx.stats.snapshot().meta_nodes_written, 15);
    }

    #[test]
    fn old_versions_remain_readable_after_new_writes() {
        let fx = Fx::new();
        fx.write(1, 0, 4);
        fx.write(2, 1, 3);
        for _ in 0..3 {
            // Repeated reads of the old snapshot are stable (immutability).
            assert_eq!(
                fx.blocks_of(1, 4, (0, 4)),
                vec![Some(1), Some(101), Some(201), Some(301)]
            );
        }
        assert_eq!(
            fx.blocks_of(2, 4, (0, 4)),
            vec![Some(1), Some(102), Some(202), Some(301)]
        );
    }

    #[test]
    fn partial_range_queries_visit_only_needed_subtrees() {
        let fx = Fx::new();
        fx.write(1, 0, 8);
        let before = fx.stats.snapshot().meta_nodes_read;
        // Query a single block: the descent reads depth+1 = 4 nodes
        // (root, (0,4), (0,2), leaf).
        assert_eq!(fx.blocks_of(1, 8, (0, 1)), vec![Some(1)]);
        let visited = fx.stats.snapshot().meta_nodes_read - before;
        assert_eq!(visited, 4);
    }

    #[test]
    fn holes_read_as_none() {
        let fx = Fx::new();
        // First write covers blocks [2, 3) only; 0–1 are holes.
        fx.write(1, 2, 3);
        assert_eq!(fx.blocks_of(1, 4, (0, 3)), vec![None, None, Some(201)]);
    }

    #[test]
    fn hole_write_preserves_old_content_through_spine() {
        let fx = Fx::new();
        fx.write(1, 0, 2); // cap 2
        fx.write(2, 6, 8); // jumps past the end, cap 8, holes [2,6)
        assert_eq!(
            fx.blocks_of(2, 8, (0, 8)),
            vec![
                Some(1),
                Some(101),
                None,
                None,
                None,
                None,
                Some(602),
                Some(702)
            ]
        );
    }

    #[test]
    fn weaving_references_in_flight_lower_versions() {
        // Simulate two concurrent writers: v2 (blocks 0–1) and v3 (blocks
        // 2–3) both assigned before either publishes. v3 publishes FIRST,
        // weaving a reference to v2's yet-unwritten subtree; then v2
        // publishes; then reads of v3 see both (the version manager would
        // only reveal v3 after v2 committed).
        let fx = Fx::new();
        fx.write(1, 0, 4);
        // Assign both versions up front (entries enter the log in order).
        let e2 = LogEntry {
            version: Version::new(2),
            blocks: BlockRange::new(0, 2),
            cap_before: 4,
            cap_after: 4,
            size_after: 4 * 64,
        };
        let e3 = LogEntry {
            version: Version::new(3),
            blocks: BlockRange::new(2, 4),
            cap_before: 4,
            cap_after: 4,
            size_after: 4 * 64,
        };
        fx.log.write().push(e2);
        fx.log.write().push(e3);
        let leaves = |v: u64, s: u64, e: u64| -> HashMap<u64, BlockDescriptor> {
            (s..e)
                .map(|b| {
                    (
                        b,
                        BlockDescriptor {
                            block_id: BlockId::new(b * 100 + v),
                            providers: vec![0],
                            len: 64,
                        },
                    )
                })
                .collect()
        };
        // v3 publishes first.
        fx.store()
            .publish_write(fx.blob, &e3, &fx.chain(), &leaves(3, 2, 4))
            .unwrap();
        // Reads of v3's left subtree would dangle here — which is exactly
        // why the version manager delays revealing v3 until v2 commits.
        // Now v2 publishes.
        fx.store()
            .publish_write(fx.blob, &e2, &fx.chain(), &leaves(2, 0, 2))
            .unwrap();
        // v3's snapshot correctly shows v2's blocks on the left.
        assert_eq!(
            fx.blocks_of(3, 4, (0, 4)),
            vec![Some(2), Some(102), Some(203), Some(303)]
        );
        // And v2's snapshot shows v1's blocks on the right.
        assert_eq!(
            fx.blocks_of(2, 4, (0, 4)),
            vec![Some(2), Some(102), Some(201), Some(301)]
        );
    }

    #[test]
    fn repair_publishes_previous_content() {
        let fx = Fx::new();
        fx.write(1, 0, 4);
        // v2 "fails" after version assignment: repair republished v1 content.
        let e2 = LogEntry {
            version: Version::new(2),
            blocks: BlockRange::new(1, 3),
            cap_before: 4,
            cap_after: 4,
            size_after: 4 * 64,
        };
        fx.log.write().push(e2);
        fx.store()
            .publish_repair(fx.blob, &e2, &fx.chain())
            .unwrap();
        // v2 reads exactly like v1.
        assert_eq!(
            fx.blocks_of(2, 4, (0, 4)),
            vec![Some(1), Some(101), Some(201), Some(301)]
        );
        // And a later write on top of v2 still weaves correctly.
        fx.write(3, 0, 1);
        assert_eq!(
            fx.blocks_of(3, 4, (0, 4)),
            vec![Some(3), Some(101), Some(201), Some(301)]
        );
    }

    #[test]
    fn repair_of_range_extension_reads_zero_holes() {
        let fx = Fx::new();
        fx.write(1, 0, 2);
        let e2 = LogEntry {
            version: Version::new(2),
            blocks: BlockRange::new(2, 4),
            cap_before: 2,
            cap_after: 4,
            size_after: 4 * 64,
        };
        fx.log.write().push(e2);
        fx.store()
            .publish_repair(fx.blob, &e2, &fx.chain())
            .unwrap();
        assert_eq!(
            fx.blocks_of(2, 4, (0, 4)),
            vec![Some(1), Some(101), None, None]
        );
    }

    #[test]
    fn gc_refcounts_accumulate_during_publish() {
        let fx = Fx::new();
        let root1 = fx.write(1, 0, 2);
        let _root2 = fx.write(2, 0, 1);
        // v1's right leaf is referenced by v1's root and v2's root.
        let shared = NodeKey::new(fx.blob, Version::new(1), Pos::new(1, 1));
        assert_eq!(fx.gc.node_count(&shared).unwrap(), 2);
        // v1's left leaf only by v1's root.
        let private = NodeKey::new(fx.blob, Version::new(1), Pos::new(0, 1));
        assert_eq!(fx.gc.node_count(&private).unwrap(), 1);
        assert_eq!(
            fx.gc.node_count(&root1).unwrap(),
            0,
            "roots counted at commit, not publish"
        );
    }
}
