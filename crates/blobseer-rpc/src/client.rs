//! Client-side adapters: the three port traits implemented over pooled
//! TCP connections.
//!
//! Each adapter holds a small connection pool per endpoint. A call checks
//! a connection out, writes one request frame, reads one response frame,
//! and returns the connection — so concurrent calls from many client
//! threads each ride their own connection and a blocking call
//! (`wait_revealed`) never head-of-line-blocks another request.
//!
//! Service failures arrive as their real [`Error`] variants (decoded from
//! the response envelope); only genuine connectivity problems — refused
//! connections, resets, malformed frames — surface as
//! [`Error::Transport`].
//!
//! Port methods that return plain values rather than `Result` (they are
//! diagnostics: counts, sizes, op counters) cannot propagate a transport
//! failure; they degrade to a zero/empty answer. The fixed deployment
//! *shape* — provider count, hosting nodes, DHT shard count, block size —
//! is fetched once at connect time and served from cache, so the hot
//! paths that consult it stay local.

use crate::server::{block_tag, meta_tag, version_tag};
use crate::wire::{self, decode_response};
use blobseer_core::meta::key::NodeKey;
use blobseer_core::meta::log::LogChain;
use blobseer_core::meta::node::TreeNode;
use blobseer_core::ports::{BlockStore, MetaStore, VersionService};
use blobseer_core::version_manager::{SnapshotInfo, WriteIntent, WriteTicket};
use blobseer_types::wire::{WireReader, WireWriter};
use blobseer_types::{BlobId, BlockId, Error, NodeId, Result, Version};
use bytes::Bytes;
use parking_lot::Mutex;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Idle connections kept per endpoint; checkouts beyond this open fresh
/// connections that are simply dropped on return.
const POOL_KEEP: usize = 8;

/// A small pool of connections to one endpoint.
pub(crate) struct Pool {
    addr: SocketAddr,
    idle: Mutex<Vec<TcpStream>>,
}

impl Pool {
    /// Creates a pool and eagerly opens (and parks) one connection, so an
    /// unreachable endpoint fails at adapter construction, not mid-write.
    pub(crate) fn connect(addr: SocketAddr) -> Result<Self> {
        let pool = Self {
            addr,
            idle: Mutex::new(Vec::new()),
        };
        let probe = pool.checkout()?;
        pool.check_in(probe);
        Ok(pool)
    }

    fn checkout(&self) -> Result<TcpStream> {
        if let Some(conn) = self.idle.lock().pop() {
            return Ok(conn);
        }
        let conn = TcpStream::connect(self.addr)
            .map_err(|e| wire::transport(&format!("connect to {}", self.addr), e))?;
        let _ = conn.set_nodelay(true);
        Ok(conn)
    }

    fn check_in(&self, conn: TcpStream) {
        let mut idle = self.idle.lock();
        if idle.len() < POOL_KEEP {
            idle.push(conn);
        }
    }

    /// One request/response exchange. The connection is returned to the
    /// pool only after a complete, healthy round trip; any failure drops
    /// it (a half-written frame poisons a connection for reuse).
    pub(crate) fn call(&self, request: &WireWriter) -> Result<Vec<u8>> {
        let mut conn = self.checkout()?;
        let exchange = wire::write_frame(&mut conn, request.as_slice())
            .and_then(|()| wire::read_frame(&mut conn));
        match exchange {
            Ok(Some(body)) => {
                self.check_in(conn);
                Ok(body)
            }
            Ok(None) => Err(Error::Transport(format!(
                "{} closed the connection mid-call",
                self.addr
            ))),
            Err(e) => Err(e),
        }
    }
}

/// A successful response body with the payload's start offset — kept
/// whole (no re-copy) so readers borrow it and block payloads can be
/// wrapped zero-copy.
struct RpcPayload {
    body: Vec<u8>,
    start: usize,
}

impl RpcPayload {
    fn reader(&self) -> WireReader<'_> {
        WireReader::new(&self.body[self.start..])
    }
}

/// A `Result`-returning RPC round trip: encodes, exchanges, unwraps the
/// response envelope.
fn call(pool: &Pool, request: WireWriter) -> Result<RpcPayload> {
    let body = pool.call(&request)?;
    let reader = decode_response(&body)?;
    let start = body.len() - reader.remaining();
    Ok(RpcPayload { body, start })
}

// --- block store ------------------------------------------------------------

/// One remote block-service endpoint.
struct BlockEndpoint {
    pool: Pool,
}

/// [`BlockStore`] over one or more remote block services.
///
/// The dense provider index space the provider manager allocates in is
/// the concatenation of the endpoints' provider lists, in the order the
/// endpoints were given — so a deployment can host each data provider in
/// its own server process and the unchanged client protocol still
/// addresses them `0..len()`.
pub struct RpcBlockStore {
    endpoints: Vec<BlockEndpoint>,
    /// Dense provider index → (endpoint index, provider index within it).
    route: Vec<(usize, u64)>,
    /// Dense provider index → hosting node.
    nodes: Vec<NodeId>,
}

impl RpcBlockStore {
    /// Connects to the given block services and builds the dense index
    /// space over them. Fails if any endpoint is unreachable or empty.
    pub fn connect(addrs: &[SocketAddr]) -> Result<Self> {
        if addrs.is_empty() {
            return Err(Error::Transport(
                "RpcBlockStore needs at least one endpoint".into(),
            ));
        }
        let mut endpoints = Vec::with_capacity(addrs.len());
        let mut route = Vec::new();
        let mut nodes = Vec::new();
        for (ei, &addr) in addrs.iter().enumerate() {
            let pool = Pool::connect(addr)?;
            let mut req = WireWriter::new();
            req.put_u8(block_tag::DESCRIBE);
            let payload = call(&pool, req)?;
            let mut r = payload.reader();
            let n = r.get_u64()?;
            for local in 0..n {
                nodes.push(NodeId::new(r.get_u64()?));
                route.push((ei, local));
            }
            r.finish()?;
            endpoints.push(BlockEndpoint { pool });
        }
        Ok(Self {
            endpoints,
            route,
            nodes,
        })
    }

    /// Request targeting one dense provider index, with the endpoint-local
    /// index substituted.
    fn provider_request(&self, tag: u8, provider: usize) -> Option<(&Pool, WireWriter)> {
        let &(ei, local) = self.route.get(provider)?;
        let mut req = WireWriter::new();
        req.put_u8(tag);
        req.put_u64(local);
        Some((&self.endpoints[ei].pool, req))
    }
}

impl BlockStore for RpcBlockStore {
    fn len(&self) -> usize {
        self.route.len()
    }

    fn node(&self, provider: usize) -> NodeId {
        self.nodes[provider]
    }

    fn index_of_node(&self, node: NodeId) -> Option<usize> {
        self.nodes.iter().position(|&n| n == node)
    }

    fn put(&self, provider: usize, id: BlockId, data: Bytes) -> Result<()> {
        let (pool, mut req) = self
            .provider_request(block_tag::PUT, provider)
            .ok_or_else(|| Error::Internal(format!("provider index {provider} out of range")))?;
        req.put_u64(id.raw());
        req.put_slice(&data);
        call(pool, req)?;
        Ok(())
    }

    fn get(&self, provider: usize, id: BlockId) -> Result<Bytes> {
        let (pool, mut req) = self
            .provider_request(block_tag::GET, provider)
            .ok_or_else(|| Error::Internal(format!("provider index {provider} out of range")))?;
        req.put_u64(id.raw());
        let payload = call(pool, req)?;
        // Zero-copy hand-off: wrap the whole response buffer in `Bytes`
        // and slice out the block payload, instead of memcpy-ing it —
        // this is the hot read path.
        let mut r = payload.reader();
        let len = r.get_u64()? as usize;
        if r.remaining() != len {
            return Err(Error::Transport(format!(
                "block payload length {len} disagrees with frame ({} bytes left)",
                r.remaining()
            )));
        }
        let data_start = payload.body.len() - len;
        Ok(Bytes::from(payload.body).slice(data_start..))
    }

    /// Transport failures degrade to `false` (the port reports presence,
    /// not reachability).
    fn contains(&self, provider: usize, id: BlockId) -> bool {
        let Some((pool, mut req)) = self.provider_request(block_tag::CONTAINS, provider) else {
            return false;
        };
        req.put_u64(id.raw());
        call(pool, req)
            .and_then(|payload| payload.reader().get_bool())
            .unwrap_or(false)
    }

    /// Transport failures degrade to `0` bytes freed.
    fn delete(&self, provider: usize, id: BlockId) -> u64 {
        let Some((pool, mut req)) = self.provider_request(block_tag::DELETE, provider) else {
            return 0;
        };
        req.put_u64(id.raw());
        call(pool, req)
            .and_then(|payload| payload.reader().get_u64())
            .unwrap_or(0)
    }

    /// Transport failures degrade to `0`.
    fn block_count(&self, provider: usize) -> usize {
        let Some((pool, req)) = self.provider_request(block_tag::BLOCK_COUNT, provider) else {
            return 0;
        };
        call(pool, req)
            .and_then(|payload| payload.reader().get_u64())
            .unwrap_or(0) as usize
    }

    /// Transport failures degrade to `0`.
    fn bytes_stored(&self, provider: usize) -> u64 {
        let Some((pool, req)) = self.provider_request(block_tag::BYTES_STORED, provider) else {
            return 0;
        };
        call(pool, req)
            .and_then(|payload| payload.reader().get_u64())
            .unwrap_or(0)
    }

    /// Transport failures degrade to `(0, 0)`.
    fn op_counts(&self, provider: usize) -> (u64, u64) {
        let Some((pool, req)) = self.provider_request(block_tag::OP_COUNTS, provider) else {
            return (0, 0);
        };
        call(pool, req)
            .and_then(|payload| {
                let mut r = payload.reader();
                Ok((r.get_u64()?, r.get_u64()?))
            })
            .unwrap_or((0, 0))
    }
}

// --- meta store -------------------------------------------------------------

/// [`MetaStore`] over a remote metadata DHT service.
pub struct RpcMetaStore {
    pool: Pool,
    shard_count: usize,
}

impl RpcMetaStore {
    /// Connects and caches the fixed shard count.
    pub fn connect(addr: SocketAddr) -> Result<Self> {
        let pool = Pool::connect(addr)?;
        let mut req = WireWriter::new();
        req.put_u8(meta_tag::SHARD_COUNT);
        let payload = call(&pool, req)?;
        let shard_count = payload.reader().get_u64()? as usize;
        Ok(Self { pool, shard_count })
    }
}

impl MetaStore for RpcMetaStore {
    fn put(&self, key: NodeKey, node: TreeNode) -> Result<()> {
        let mut req = WireWriter::new();
        req.put_u8(meta_tag::PUT);
        wire::put_node_key(&mut req, &key);
        wire::put_tree_node(&mut req, &node);
        call(&self.pool, req)?;
        Ok(())
    }

    fn get(&self, key: &NodeKey) -> Result<TreeNode> {
        let mut req = WireWriter::new();
        req.put_u8(meta_tag::GET);
        wire::put_node_key(&mut req, key);
        let payload = call(&self.pool, req)?;
        let mut r = payload.reader();
        let node = wire::get_tree_node(&mut r)?;
        r.finish()?;
        Ok(node)
    }

    /// Transport failures degrade to `false` (nothing deleted).
    fn delete(&self, key: &NodeKey) -> bool {
        let mut req = WireWriter::new();
        req.put_u8(meta_tag::DELETE);
        wire::put_node_key(&mut req, key);
        call(&self.pool, req)
            .and_then(|payload| payload.reader().get_bool())
            .unwrap_or(false)
    }

    fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Transport failures degrade to `0`.
    fn node_count(&self) -> usize {
        let mut req = WireWriter::new();
        req.put_u8(meta_tag::NODE_COUNT);
        call(&self.pool, req)
            .and_then(|payload| payload.reader().get_u64())
            .unwrap_or(0) as usize
    }

    /// Transport failures degrade to an empty vector.
    fn shard_stats(&self) -> Vec<(usize, u64, u64)> {
        let mut req = WireWriter::new();
        req.put_u8(meta_tag::SHARD_STATS);
        call(&self.pool, req)
            .and_then(|payload| {
                let mut r = payload.reader();
                let n = r.get_u64()? as usize;
                let mut out = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    out.push((r.get_u64()? as usize, r.get_u64()?, r.get_u64()?));
                }
                r.finish()?;
                Ok(out)
            })
            .unwrap_or_default()
    }

    /// Best-effort over the wire (a crash-injection hook; transport
    /// failures are ignored).
    fn crash_shard(&self, shard: usize) {
        let mut req = WireWriter::new();
        req.put_u8(meta_tag::CRASH_SHARD);
        req.put_u64(shard as u64);
        let _ = call(&self.pool, req);
    }
}

// --- version service --------------------------------------------------------

/// [`VersionService`] over a remote version manager.
pub struct RpcVersionService {
    pool: Pool,
    block_size: u64,
}

impl RpcVersionService {
    /// Connects and caches the fixed block size.
    pub fn connect(addr: SocketAddr) -> Result<Self> {
        let pool = Pool::connect(addr)?;
        let mut req = WireWriter::new();
        req.put_u8(version_tag::BLOCK_SIZE);
        let payload = call(&pool, req)?;
        let block_size = payload.reader().get_u64()?;
        Ok(Self { pool, block_size })
    }

    fn blob_request(tag: u8, blob: BlobId) -> WireWriter {
        let mut req = WireWriter::new();
        req.put_u8(tag);
        req.put_u64(blob.raw());
        req
    }
}

impl VersionService for RpcVersionService {
    fn block_size(&self) -> u64 {
        self.block_size
    }

    /// # Panics
    /// Panics if the version manager is unreachable — the port has no
    /// error channel here, and inventing a blob id locally would corrupt
    /// the deployment.
    fn create_blob(&self) -> BlobId {
        let mut req = WireWriter::new();
        req.put_u8(version_tag::CREATE_BLOB);
        let payload = call(&self.pool, req).expect("version manager unreachable in create_blob");
        BlobId::new(
            payload
                .reader()
                .get_u64()
                .expect("malformed create_blob response"),
        )
    }

    fn branch(&self, parent: BlobId, at: Version) -> Result<BlobId> {
        let mut req = Self::blob_request(version_tag::BRANCH, parent);
        req.put_u64(at.raw());
        let payload = call(&self.pool, req)?;
        Ok(BlobId::new(payload.reader().get_u64()?))
    }

    fn assign(&self, blob: BlobId, intent: WriteIntent) -> Result<WriteTicket> {
        let mut req = Self::blob_request(version_tag::ASSIGN, blob);
        wire::put_write_intent(&mut req, intent);
        let payload = call(&self.pool, req)?;
        let mut r = payload.reader();
        let ticket = wire::get_write_ticket(&mut r)?;
        r.finish()?;
        Ok(ticket)
    }

    fn commit(&self, blob: BlobId, version: Version) -> Result<()> {
        let mut req = Self::blob_request(version_tag::COMMIT, blob);
        req.put_u64(version.raw());
        call(&self.pool, req)?;
        Ok(())
    }

    fn latest(&self, blob: BlobId) -> Result<(Version, u64)> {
        let req = Self::blob_request(version_tag::LATEST, blob);
        let payload = call(&self.pool, req)?;
        let mut r = payload.reader();
        let out = (Version::new(r.get_u64()?), r.get_u64()?);
        r.finish()?;
        Ok(out)
    }

    fn snapshot_info(&self, blob: BlobId, version: Version) -> Result<SnapshotInfo> {
        let mut req = Self::blob_request(version_tag::SNAPSHOT_INFO, blob);
        req.put_u64(version.raw());
        let payload = call(&self.pool, req)?;
        let mut r = payload.reader();
        let info = wire::get_snapshot_info(&mut r)?;
        r.finish()?;
        Ok(info)
    }

    fn chain(&self, blob: BlobId) -> Result<LogChain> {
        let req = Self::blob_request(version_tag::CHAIN, blob);
        let payload = call(&self.pool, req)?;
        let mut r = payload.reader();
        let chain = wire::get_log_chain(&mut r)?;
        r.finish()?;
        Ok(chain)
    }

    fn wait_revealed(&self, blob: BlobId, version: Version, timeout: Duration) -> Result<()> {
        let mut req = Self::blob_request(version_tag::WAIT_REVEALED, blob);
        req.put_u64(version.raw());
        wire::put_duration(&mut req, timeout);
        // The server enforces the timeout and answers with Ok or
        // Error::Timeout; this call simply blocks on the response.
        call(&self.pool, req)?;
        Ok(())
    }

    fn pending_versions(&self, blob: BlobId) -> Result<Vec<Version>> {
        let req = Self::blob_request(version_tag::PENDING_VERSIONS, blob);
        let payload = call(&self.pool, req)?;
        let mut r = payload.reader();
        let versions = wire::get_versions(&mut r)?;
        r.finish()?;
        Ok(versions)
    }

    fn delete_blob(&self, blob: BlobId) -> Result<Vec<NodeKey>> {
        let req = Self::blob_request(version_tag::DELETE_BLOB, blob);
        let payload = call(&self.pool, req)?;
        let mut r = payload.reader();
        let roots = wire::get_node_keys(&mut r)?;
        r.finish()?;
        Ok(roots)
    }

    fn collect_before(&self, blob: BlobId, keep_from: Version) -> Result<Vec<NodeKey>> {
        let mut req = Self::blob_request(version_tag::COLLECT_BEFORE, blob);
        req.put_u64(keep_from.raw());
        let payload = call(&self.pool, req)?;
        let mut r = payload.reader();
        let roots = wire::get_node_keys(&mut r)?;
        r.finish()?;
        Ok(roots)
    }
}
