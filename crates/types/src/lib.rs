//! Shared identifiers, byte ranges, errors and configuration used across the
//! BlobSeer reproduction workspace.
//!
//! Everything here is intentionally tiny and dependency-free: these types are
//! the vocabulary that the storage engine ([`blobseer-core`]), the file-system
//! layers (`bsfs`, `hdfs-sim`), the Map/Reduce engine and the discrete-event
//! experiment models all speak.
//!
//! [`blobseer-core`]: https://hal.inria.fr/inria-00456801

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod error;
pub mod ids;
pub mod range;
pub mod wire;

pub use config::{BlobSeerConfig, HdfsConfig};
pub use error::{Error, Result};
pub use ids::{BlobId, BlockId, ClientId, NodeId, Version};
pub use range::{BlockSpan, ByteRange};

/// The chunk/block size used throughout the paper's evaluation: 64 MB.
///
/// Both HDFS chunks and BlobSeer blocks are configured to this size in the
/// paper (§III-A.2). Library code never hard-codes it — it always comes from
/// a [`config::BlobSeerConfig`] / [`config::HdfsConfig`] — but the experiment
/// drivers and examples use this constant to mirror the paper.
pub const PAPER_BLOCK_SIZE: u64 = 64 * 1024 * 1024;

/// The fine-grain record-level access size that Hadoop clients issue (§IV-B,
/// §V-E): 4 KB.
pub const PAPER_IO_SIZE: u64 = 4 * 1024;
