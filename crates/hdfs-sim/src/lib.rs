//! `hdfs-sim` — the HDFS 0.20 baseline the paper compares against (§II-B),
//! behind the same [`dfs::FileSystem`] API as BSFS.
//!
//! Faithful to the semantics the paper leans on:
//!
//! * **Centralized metadata**: one [`namenode::NameNode`] holds the
//!   namespace *and* the chunk layout; every metadata operation serializes
//!   through it.
//! * **64 MB chunks** on [`datanode::DataNode`]s; reads and writes stream
//!   directly between clients and datanodes.
//! * **Single writer, immutable data**: one lease per file; "once written,
//!   data cannot be altered, neither by overwriting nor by appending";
//!   `append` returns `Unsupported` unless configured like later releases.
//! * **Client-side buffering**: readers prefetch whole chunks, writers
//!   commit whole chunks.
//! * **Local-first placement**: a writer co-located with a datanode stores
//!   its chunks locally (§V-D); remote writers get sticky-random placement
//!   (DESIGN.md §3.4) — the root of the load imbalance of Fig. 3(b).
//!
//! ```
//! use blobseer_types::{HdfsConfig, NodeId};
//! use dfs::{FileSystem, util};
//! use hdfs_sim::HdfsCluster;
//!
//! let cluster = HdfsCluster::new(HdfsConfig::small_for_tests(), 4);
//! let fs = cluster.mount(NodeId::new(0));
//! util::write_file(&fs, "/data/f", b"hdfs bytes").unwrap();
//! assert_eq!(util::read_fully(&fs, "/data/f").unwrap(), b"hdfs bytes");
//! assert!(fs.append("/data/f").is_err(), "no append on 0.20 (§V-F)");
//! ```
#![forbid(unsafe_code)]

pub mod datanode;
pub mod fs;
pub mod namenode;

pub use datanode::{ChunkId, DataNode};
pub use fs::{Hdfs, HdfsCluster};
pub use namenode::{ChunkMeta, FileSnapshot, NameNode};
