// Fixture: raw std::sync lock outside the shim and simnet::gate.
pub static COUNTER: std::sync::Mutex<u64> = std::sync::Mutex::new(0);

pub fn guard() -> std::sync::MutexGuard<'static, u64> {
    COUNTER.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
