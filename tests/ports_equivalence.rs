//! Observational equivalence of the lock-striped adapters and the seed's
//! single-global-lock layout.
//!
//! The sharded maps behind `DataProvider`/`MetaProvider`/`GcTracker` must
//! be a pure performance change: for every interleaved put/get/delete
//! workload, a deployment striped over many locks must be observationally
//! identical to one striped over a single lock (which *is* the seed's
//! `RwLock<HashMap>` layout). Property tests drive both with the same
//! random scripts; a threaded test checks the concurrent path agrees on
//! final state.

use blobseer_core::block_store::{DataProvider, ProviderSet};
use blobseer_core::dht::MetaDht;
use blobseer_core::meta::key::{NodeKey, Pos};
use blobseer_core::meta::node::{BlockDescriptor, TreeNode};
use blobseer_core::ports::BlockStore;
use blobseer_types::{BlobId, BlockId, Error, NodeId, Version};
use bytes::Bytes;
use proptest::prelude::*;
use std::sync::Arc;

/// One step of a block-store workload. Several logical writers' scripts are
/// interleaved by construction: the generator draws (writer, op) pairs and
/// the keys are namespaced per writer, exactly the access pattern of
/// concurrent clients that never violate block immutability.
#[derive(Clone, Debug)]
enum BlockOp {
    Put { writer: u8, key: u8 },
    Get { writer: u8, key: u8 },
    Delete { writer: u8, key: u8 },
}

fn block_ops() -> impl Strategy<Value = Vec<BlockOp>> {
    let op = prop_oneof![
        (0u8..4, any::<u8>()).prop_map(|(writer, key)| BlockOp::Put { writer, key }),
        (0u8..4, any::<u8>()).prop_map(|(writer, key)| BlockOp::Get { writer, key }),
        (0u8..4, any::<u8>()).prop_map(|(writer, key)| BlockOp::Delete { writer, key }),
    ];
    proptest::collection::vec(op, 1..200)
}

/// Deterministic content per block id, so re-puts are always idempotent.
fn content(writer: u8, key: u8) -> Bytes {
    Bytes::from(vec![writer ^ key; 1 + (key % 7) as usize])
}

fn block_id(writer: u8, key: u8) -> BlockId {
    BlockId::new(1 + writer as u64 * 1000 + key as u64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The sharded data provider behaves exactly like the global-lock one
    /// under interleaved put/get/delete scripts.
    #[test]
    fn sharded_data_provider_matches_global_lock(ops in block_ops()) {
        let global = DataProvider::with_shards(NodeId::new(0), 1);
        let sharded = DataProvider::with_shards(NodeId::new(0), 32);
        for op in &ops {
            match *op {
                BlockOp::Put { writer, key } => {
                    let id = block_id(writer, key);
                    global.put(id, content(writer, key));
                    sharded.put(id, content(writer, key));
                }
                BlockOp::Get { writer, key } => {
                    let id = block_id(writer, key);
                    prop_assert_eq!(global.get(id), sharded.get(id));
                }
                BlockOp::Delete { writer, key } => {
                    let id = block_id(writer, key);
                    prop_assert_eq!(global.delete(id), sharded.delete(id));
                }
            }
            prop_assert_eq!(global.block_count(), sharded.block_count());
            prop_assert_eq!(global.bytes_stored(), sharded.bytes_stored());
        }
        // Full final sweep over the whole key space.
        for writer in 0..4u8 {
            for key in 0..=255u8 {
                let id = block_id(writer, key);
                prop_assert_eq!(global.contains(id), sharded.contains(id));
                prop_assert_eq!(global.get(id).ok(), sharded.get(id).ok());
            }
        }
    }

    /// Same for the metadata DHT, including conflict outcomes.
    #[test]
    fn sharded_meta_dht_matches_global_lock(ops in block_ops()) {
        let global = MetaDht::with_stripes(4, 2, 1);
        let sharded = MetaDht::with_stripes(4, 2, 32);
        let key_of = |writer: u8, key: u8| {
            NodeKey::new(
                BlobId::new(1 + writer as u64),
                Version::new(1 + (key % 13) as u64),
                Pos::new(key as u64, 1),
            )
        };
        let node_of = |writer: u8, key: u8| {
            TreeNode::Leaf(BlockDescriptor {
                block_id: block_id(writer, key),
                providers: vec![writer as u32],
                len: 64,
            })
        };
        for op in &ops {
            match *op {
                BlockOp::Put { writer, key } => {
                    let a = global.put(key_of(writer, key), node_of(writer, key));
                    let b = sharded.put(key_of(writer, key), node_of(writer, key));
                    prop_assert_eq!(a, b);
                }
                BlockOp::Get { writer, key } => {
                    prop_assert_eq!(
                        global.get(&key_of(writer, key)),
                        sharded.get(&key_of(writer, key))
                    );
                }
                BlockOp::Delete { writer, key } => {
                    prop_assert_eq!(
                        global.delete(&key_of(writer, key)),
                        sharded.delete(&key_of(writer, key))
                    );
                }
            }
            prop_assert_eq!(global.node_count(), sharded.node_count());
        }
    }
}

#[test]
fn conflicting_reputs_fail_identically_on_both_layouts() {
    for stripes in [1usize, 32] {
        let dht = MetaDht::with_stripes(4, 1, stripes);
        let key = NodeKey::new(BlobId::new(1), Version::new(1), Pos::new(0, 1));
        let leaf = |b: u64| {
            TreeNode::Leaf(BlockDescriptor {
                block_id: BlockId::new(b),
                providers: vec![0],
                len: 8,
            })
        };
        dht.put(key, leaf(1)).unwrap();
        let err = dht.put(key, leaf(2)).unwrap_err();
        assert!(
            matches!(err, Error::MetadataConflict(_)),
            "stripes={stripes}: {err}"
        );
        assert_eq!(dht.get(&key).unwrap(), leaf(1), "stripes={stripes}");
    }
}

#[test]
fn threaded_workload_converges_to_identical_state() {
    // 8 threads hammer both layouts with the same per-thread scripts
    // (disjoint key spaces, so the interleaving cannot change outcomes);
    // both must converge to the same observable state.
    let run = |shards: usize| {
        let set = Arc::new(ProviderSet::with_shards(
            2,
            |i| NodeId::new(i as u64),
            shards,
        ));
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let set = Arc::clone(&set);
                std::thread::spawn(move || {
                    for i in 0..300u64 {
                        let id = BlockId::new(1 + t * 10_000 + i);
                        let data = Bytes::from(vec![(t ^ i) as u8; 8]);
                        let p = (i % 2) as usize;
                        BlockStore::put(&*set, p, id, data).unwrap();
                        assert_eq!(BlockStore::get(&*set, p, id).unwrap().len(), 8);
                        if i % 3 == 0 {
                            BlockStore::delete(&*set, p, id);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        (
            set.layout_vector(),
            BlockStore::total_bytes_stored(&*set),
            BlockStore::total_block_count(&*set),
        )
    };
    assert_eq!(run(1), run(32));
}
