//! Placement-policy benchmarks: decision cost per block and the resulting
//! balance quality — the machinery behind Fig. 3(b).

use blobseer_core::placement::{manhattan_unbalance, Placer};
use blobseer_types::config::PlacementPolicy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn policies() -> Vec<(&'static str, PlacementPolicy)> {
    vec![
        ("round_robin", PlacementPolicy::RoundRobin),
        ("least_loaded", PlacementPolicy::LeastLoaded),
        ("random", PlacementPolicy::Random),
        (
            "sticky_65",
            PlacementPolicy::StickyRandom { stickiness: 65 },
        ),
    ]
}

/// Per-block placement decision cost over 269 providers.
fn bench_pick(c: &mut Criterion) {
    let mut g = c.benchmark_group("placement/pick_269_providers");
    for (name, policy) in policies() {
        g.bench_function(name, |b| {
            let mut placer = Placer::new(policy, 42);
            let mut loads = vec![0u64; 269];
            b.iter(|| {
                let i = placer.pick(&loads, &[]);
                loads[i] += 1;
                black_box(i)
            });
        });
    }
    g.finish();
}

/// Placing a 16 GB file (256 blocks) end to end, including the unbalance
/// metric computation.
fn bench_place_file(c: &mut Criterion) {
    let mut g = c.benchmark_group("placement/place_256_blocks_and_score");
    for (name, policy) in policies() {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut placer = Placer::new(policy, 42);
                let mut loads = vec![0u64; 269];
                for _ in 0..256 {
                    let i = placer.pick(&loads, &[]);
                    loads[i] += 1;
                }
                black_box(manhattan_unbalance(&loads))
            });
        });
    }
    g.finish();
}

/// Replicated placement (3 distinct targets per block).
fn bench_replicated(c: &mut Criterion) {
    let mut g = c.benchmark_group("placement/pick_3_replicas");
    for (name, policy) in policies() {
        g.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, &policy| {
            let mut placer = Placer::new(policy, 42);
            let loads = vec![0u64; 269];
            b.iter(|| black_box(placer.pick_replicas(&loads, 3)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pick, bench_place_file, bench_replicated);
criterion_main!(benches);
