//! `experiments` — the figure-scale reproduction of the paper's evaluation
//! (§V) on the discrete-event simulator.
//!
//! Every module regenerates one figure:
//!
//! | Module | Paper figure | Scenario |
//! |---|---|---|
//! | [`fig3a`] | Fig. 3(a) | single writer, 1→16 GB file, 270 machines |
//! | [`fig3b`] | Fig. 3(b) | placement unbalance (Manhattan distance) |
//! | [`fig4`]  | Fig. 4    | 1→250 concurrent readers, shared file |
//! | [`fig5`]  | Fig. 5    | 1→250 concurrent appenders, shared BLOB |
//! | [`fig6`]  | Fig. 6(a)/(b) | RandomTextWriter & distributed grep |
//!
//! Every BSFS curve now runs the **real client protocol** through one
//! harness, [`concurrent`]: the single-writer figures (3a/3b) deploy it
//! with a single client thread, the concurrent-client figures (4, 5, 6)
//! with up to 250 — so the version-manager FIFO, tree-descent hops and
//! disk/flow contention *emerge* from the live code under the §V cost
//! model instead of being hand-computed per figure, and the cost
//! arithmetic cannot drift between figures.
//!
//! HDFS comparison legs remain cost models (HDFS is the baseline, not the
//! system under test) composed from the same simulated-time primitives.
//! Calibrated constants live in [`constants`]; `docs/REPRODUCING.md` maps
//! every figure to its driver, expected band, and real-vs-modeled layers.
#![forbid(unsafe_code)]

pub mod concurrent;
pub mod constants;
pub mod fig3a;
pub mod fig3b;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod report;
pub mod topology;

pub use constants::Constants;

/// One-line report of the process-wide lock contention counters, as
/// surfaced on [`blobseer_core::stats::StatsSnapshot`] — printed by the
/// figure drivers under `--verbose`. The counters come from the
/// instrumented `parking_lot` shim and cover every lock in the process,
/// not just the engine the snapshot was taken from.
pub fn lock_stats_line() -> String {
    let snap = blobseer_core::stats::EngineStats::new().snapshot();
    format!(
        "lock_contended_acquires={} lock_max_wait_ns={}",
        snap.lock_contended_acquires, snap.lock_max_wait_ns
    )
}
pub use report::{Figure, Series};
pub use topology::Backend;
