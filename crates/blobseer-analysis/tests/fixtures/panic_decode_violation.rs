// Fixture: panic! in an RPC decode path.
pub fn decode_op(tag: u8) -> &'static str {
    match tag {
        0 => "read",
        1 => "write",
        _ => panic!("unknown opcode {tag}"),
    }
}
