//! Microbenchmarks of the metadata DHT: put/get latency and concurrent
//! throughput across shard counts — the decentralization knob the paper
//! credits for metadata scalability (§III-A.3).

use blobseer_core::dht::MetaDht;
use blobseer_core::meta::key::{NodeKey, Pos};
use blobseer_core::meta::node::{BlockDescriptor, TreeNode};
use blobseer_types::{BlobId, BlockId, Version};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn key(v: u64, start: u64) -> NodeKey {
    NodeKey::new(BlobId::new(1), Version::new(v), Pos::new(start, 1))
}

fn leaf(id: u64) -> TreeNode {
    TreeNode::Leaf(BlockDescriptor {
        block_id: BlockId::new(id),
        providers: vec![0],
        len: 64,
    })
}

fn bench_put_get(c: &mut Criterion) {
    let mut g = c.benchmark_group("dht/put_get");
    for &shards in &[1usize, 4, 20] {
        g.bench_with_input(BenchmarkId::new("put", shards), &shards, |b, &shards| {
            let dht = MetaDht::new(shards, 1);
            let mut v = 0u64;
            b.iter(|| {
                v += 1;
                dht.put(key(v, v % 1024), leaf(v)).unwrap();
            });
        });
        g.bench_with_input(BenchmarkId::new("get", shards), &shards, |b, &shards| {
            let dht = MetaDht::new(shards, 1);
            for v in 0..4096u64 {
                dht.put(key(v, v % 1024), leaf(v)).unwrap();
            }
            let mut v = 0u64;
            b.iter(|| {
                v = (v + 1) % 4096;
                black_box(dht.get(&key(v, v % 1024)).unwrap())
            });
        });
    }
    g.finish();
}

/// Concurrent readers hammering the DHT: shard count scaling.
fn bench_concurrent_gets(c: &mut Criterion) {
    let mut g = c.benchmark_group("dht/concurrent_gets_8_threads");
    g.sample_size(10);
    for &shards in &[1usize, 20] {
        g.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &shards,
            |b, &shards| {
                let dht = Arc::new(MetaDht::new(shards, 1));
                for v in 0..4096u64 {
                    dht.put(key(v, v % 1024), leaf(v)).unwrap();
                }
                b.iter(|| {
                    let threads: Vec<_> = (0..8)
                        .map(|t| {
                            let dht = Arc::clone(&dht);
                            std::thread::spawn(move || {
                                for i in 0..2000u64 {
                                    let v = (t * 911 + i) % 4096;
                                    black_box(dht.get(&key(v, v % 1024)).unwrap());
                                }
                            })
                        })
                        .collect();
                    for t in threads {
                        t.join().unwrap();
                    }
                });
            },
        );
    }
    g.finish();
}

/// Replicated puts (metadata fault tolerance, §VI-B).
fn bench_replicated_put(c: &mut Criterion) {
    let mut g = c.benchmark_group("dht/replicated_put");
    for &repl in &[1usize, 2, 3] {
        g.bench_with_input(BenchmarkId::from_parameter(repl), &repl, |b, &repl| {
            let dht = MetaDht::new(20, repl);
            let mut v = 0u64;
            b.iter(|| {
                v += 1;
                dht.put(key(v, v % 1024), leaf(v)).unwrap();
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_put_get,
    bench_concurrent_gets,
    bench_replicated_put
);
criterion_main!(benches);
