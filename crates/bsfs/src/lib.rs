//! `bsfs` — the **BlobSeer File System**: the layer that "enables BlobSeer
//! to act as a storage backend file system for Hadoop" (§IV).
//!
//! Three pieces, mirroring §IV-A/B/C of the paper:
//!
//! * [`namespace`] — a centralized namespace manager mapping a hierarchical
//!   directory tree onto flat BLOBs, consulted only for metadata operations
//!   so data traffic fully benefits from BlobSeer's decentralization;
//! * [`stream`] — client-side caching: readers prefetch whole blocks,
//!   writers buffer until a block fills (write-behind), so Hadoop's 4 KB
//!   record accesses never hit the network individually;
//! * [`fs`] — the [`dfs::FileSystem`] implementation tying them together,
//!   including the block-location call that lets the jobtracker place
//!   computation next to data.
//!
//! Beyond the Hadoop API, BSFS exposes BlobSeer's extras (§V-F, §VI-A):
//! concurrent appends to one file from many clients, and opening pinned
//! past versions of a file.
//!
//! ```
//! use blobseer_core::BlobSeer;
//! use blobseer_types::{BlobSeerConfig, NodeId};
//! use bsfs::BsfsCluster;
//! use dfs::{FileSystem, util};
//!
//! let system = BlobSeer::deploy(BlobSeerConfig::small_for_tests(), 4);
//! let cluster = BsfsCluster::new(system);
//! let fs = cluster.mount(NodeId::new(0));
//!
//! util::write_file(&fs, "/data/input.txt", b"hello bsfs\n").unwrap();
//! assert_eq!(util::read_fully(&fs, "/data/input.txt").unwrap(), b"hello bsfs\n");
//! assert_eq!(fs.backend_name(), "BSFS");
//! ```
#![forbid(unsafe_code)]

pub mod fs;
pub mod namespace;
pub mod stream;

pub use fs::{Bsfs, BsfsCluster};
pub use namespace::{NamespaceManager, NsEntry};
pub use stream::{BsfsInput, BsfsOutput};
