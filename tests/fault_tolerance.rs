//! Fault-tolerance tests for the §VI-B mechanisms: block replication,
//! DHT-replicated metadata, and writer-failure repair.

use blobseer_core::{BlobSeer, WriteIntent};
use blobseer_types::{BlobSeerConfig, Error, NodeId, Version};
use std::time::Duration;

const BLOCK: u64 = 512;

#[test]
fn replicated_metadata_survives_shard_crash() {
    // "The metadata is stored in a DHT … which is resilient to faults by
    // construction" — with metadata replication 2, losing one metadata
    // provider loses nothing.
    let cfg = BlobSeerConfig {
        block_size: BLOCK,
        replication: 1,
        metadata_providers: 4,
        metadata_replication: 2,
        ..BlobSeerConfig::small_for_tests()
    };
    let sys = BlobSeer::deploy(cfg, 4);
    let client = sys.client(NodeId::new(0));
    let blob = client.create();
    let payload: Vec<u8> = (0..4 * BLOCK).map(|i| i as u8).collect();
    client.write(blob, 0, &payload).unwrap();

    // Crash one shard: every node also lives on the next shard, so reads
    // keep working (we do not re-replicate, so one crash is the budget).
    sys.dht().crash_shard(2);
    let data = client.read(blob, None, 0, payload.len() as u64).unwrap();
    assert_eq!(
        &data[..],
        &payload[..],
        "read failed after crashing a shard"
    );
}

#[test]
fn unreplicated_metadata_crash_is_detected_not_silent() {
    let cfg = BlobSeerConfig {
        block_size: BLOCK,
        metadata_providers: 4,
        metadata_replication: 1,
        ..BlobSeerConfig::small_for_tests()
    };
    let sys = BlobSeer::deploy(cfg, 4);
    let client = sys.client(NodeId::new(0));
    let blob = client.create();
    client
        .write(blob, 0, &vec![1u8; (8 * BLOCK) as usize])
        .unwrap();
    // Crash every shard: all tree nodes gone.
    for shard in 0..4 {
        sys.dht().crash_shard(shard);
    }
    match client.read(blob, None, 0, BLOCK) {
        Err(Error::MissingMetadata(_)) => {}
        other => panic!("expected MissingMetadata, got {other:?}"),
    }
}

#[test]
fn failed_writers_repair_and_history_stays_consistent() {
    let sys = BlobSeer::deploy(BlobSeerConfig::small_for_tests().with_block_size(BLOCK), 4);
    let client = sys.client(NodeId::new(0));
    let blob = client.create();
    client.write(blob, 0, &[1u8; 512]).unwrap();
    // Interleave successful and failed writes.
    for i in 0..10u64 {
        if i % 3 == 0 {
            client
                .simulate_failed_write(
                    blob,
                    WriteIntent::Write {
                        offset: 0,
                        size: 512,
                    },
                )
                .unwrap();
        } else {
            client.write(blob, 0, &[(i + 2) as u8; 512]).unwrap();
        }
    }
    let (latest, size) = client.latest(blob).unwrap();
    assert_eq!(latest, Version::new(11));
    assert_eq!(size, 512);
    assert_eq!(sys.stats().snapshot().writes_aborted, 4);
    // Every version is readable; aborted ones mirror their predecessor.
    let mut prev = client.read(blob, Some(Version::new(1)), 0, 512).unwrap();
    for v in 2..=11u64 {
        let data = client.read(blob, Some(Version::new(v)), 0, 512).unwrap();
        // v maps to script index i = v - 2 (writes above started at v=2).
        let i = v - 2;
        if i % 3 == 0 {
            assert_eq!(data, prev, "aborted v{v} must mirror v{}", v - 1);
        } else {
            assert!(data.iter().all(|&b| b == (i + 2) as u8));
        }
        prev = data;
    }
}

#[test]
fn reveal_stall_from_crashed_writer_times_out_cleanly() {
    let sys = BlobSeer::deploy(BlobSeerConfig::small_for_tests().with_block_size(BLOCK), 4);
    let client = sys.client(NodeId::new(0));
    let blob = client.create();
    client.write(blob, 0, &[1u8; 64]).unwrap();
    // A writer crashes after assignment and never publishes.
    let stuck = sys
        .version_manager()
        .assign(blob, WriteIntent::Append { size: 64 })
        .unwrap();
    // A healthy writer commits behind it; its version cannot reveal.
    let v3 = client.write(blob, 0, &[3u8; 64]).unwrap();
    let err = client
        .wait_revealed(blob, v3, Duration::from_millis(50))
        .unwrap_err();
    assert!(matches!(err, Error::Timeout(_)));
    // Operator-style recovery: repair the stuck version.
    client.repair_aborted(&stuck).unwrap();
    client
        .wait_revealed(blob, v3, Duration::from_millis(50))
        .unwrap();
    assert_eq!(client.latest(blob).unwrap().0, v3);
}

#[test]
fn block_replication_keeps_reads_alive_after_data_loss() {
    let cfg = BlobSeerConfig::small_for_tests()
        .with_block_size(BLOCK)
        .with_replication(2);
    let sys = BlobSeer::deploy(cfg, 4);
    let client = sys.client(NodeId::new(0));
    let blob = client.create();
    let payload = vec![9u8; (4 * BLOCK) as usize];
    client.write(blob, 0, &payload).unwrap();
    // Wipe every block from provider 0 (disk loss). Readers pick replicas
    // deterministically by block index, so force all candidate replicas:
    // reads must succeed via the surviving copies when the primary is gone.
    let locs = client
        .locations(blob, None, 0, payload.len() as u64)
        .unwrap();
    for loc in &locs {
        assert_eq!(loc.nodes.len(), 2);
    }
    // Delete provider 0's copies by finding block ids through provider API.
    let before = sys.providers().block_count(0);
    assert!(before > 0, "provider 0 should hold replicas");
    // The client's replica choice is (block_index % replicas); flipping the
    // data under one provider is visible only if that replica is chosen,
    // so verify both copies hold identical bytes instead.
    let total = sys.providers().total_block_count();
    assert_eq!(total, 8, "4 blocks × 2 replicas");
    let data = client.read(blob, None, 0, payload.len() as u64).unwrap();
    assert_eq!(&data[..], &payload[..]);
}
