//! The concurrent-client harness, exercised through its public API: many
//! real `BlobClient`s interleaved on the simulated clock must behave
//! exactly like the live engine under real threads — because they *are*
//! the live engine under real threads.

use blobseer_core::BlobClient;
use blobseer_types::config::PlacementPolicy;
use blobseer_types::NodeId;
use experiments::concurrent::{self, ClientTask, ConcurrentDeployment};
use experiments::Constants;
use std::sync::Mutex;

const BLOCK: u64 = 256;

fn deploy(n_providers: usize, n_clients: usize, seed: u64) -> ConcurrentDeployment {
    concurrent::deploy(
        &Constants::default(),
        n_providers,
        n_providers.max(n_clients),
        PlacementPolicy::RoundRobin,
        seed,
        BLOCK,
    )
}

#[test]
fn sixteen_appenders_produce_sixteen_consecutive_versions() {
    let dep = deploy(8, 16, 1);
    let boot = dep.sys.client(NodeId::new(0));
    let blob = boot.create();
    dep.set_charging(true);
    let tickets = Mutex::new(Vec::new());
    let clients: Vec<ClientTask<'_>> = (0..16u64)
        .map(|i| {
            let tickets = &tickets;
            (
                NodeId::new(i % 8),
                Box::new(move |cl: BlobClient| {
                    let (offset, v) = cl.append(blob, &[i as u8; BLOCK as usize]).unwrap();
                    tickets.lock().unwrap().push((v.raw(), offset, i));
                }) as Box<dyn FnOnce(BlobClient) + Send>,
            )
        })
        .collect();
    dep.run_clients(clients);

    let mut tickets = tickets.into_inner().unwrap();
    tickets.sort_unstable();
    // 16 distinct consecutive versions, offsets matching version rank.
    assert_eq!(
        tickets.iter().map(|&(v, _, _)| v).collect::<Vec<_>>(),
        (1..=16).collect::<Vec<_>>()
    );
    for &(v, offset, _) in &tickets {
        assert_eq!(offset, (v - 1) * BLOCK, "offset fixed at assignment");
    }
    // The final BLOB is readable and holds every append exactly once.
    let (latest, size) = boot.latest(blob).unwrap();
    assert_eq!((latest.raw(), size), (16, 16 * BLOCK));
    let data = boot.read(blob, None, 0, size).unwrap();
    let mut seen = std::collections::HashSet::new();
    for chunk in data.chunks(BLOCK as usize) {
        assert!(chunk.iter().all(|&b| b == chunk[0]), "torn append");
        assert!(seen.insert(chunk[0]), "duplicate append");
    }
    assert_eq!(seen.len(), 16);
}

#[test]
fn sixteen_readers_observe_one_consistent_snapshot() {
    let dep = deploy(8, 16, 2);
    let boot = dep.sys.client(NodeId::new(0));
    let blob = boot.create();
    for i in 0..16u8 {
        boot.append(blob, &[i; BLOCK as usize]).unwrap();
    }
    dep.set_charging(true);
    let observed = Mutex::new(Vec::new());
    let clients: Vec<ClientTask<'_>> = (0..16u64)
        .map(|i| {
            let observed = &observed;
            (
                NodeId::new(i % 8),
                Box::new(move |cl: BlobClient| {
                    let (v, size) = cl.latest(blob).unwrap();
                    let data = cl.read(blob, Some(v), i * BLOCK, BLOCK).unwrap();
                    observed
                        .lock()
                        .unwrap()
                        .push((v.raw(), size, data[0] as u64, i));
                }) as Box<dyn FnOnce(BlobClient) + Send>,
            )
        })
        .collect();
    dep.run_clients(clients);
    let observed = observed.into_inner().unwrap();
    assert_eq!(observed.len(), 16);
    for &(v, size, byte, i) in &observed {
        assert_eq!(v, 16, "every reader sees the same revealed snapshot");
        assert_eq!(size, 16 * BLOCK);
        assert_eq!(byte, i, "reader {i} reads its own chunk's bytes");
    }
}

#[test]
fn runs_are_deterministic_per_seed() {
    let run = |seed: u64| {
        let dep = deploy(8, 16, seed);
        let boot = dep.sys.client(NodeId::new(0));
        let blob = boot.create();
        dep.set_charging(true);
        let ends = Mutex::new(Vec::new());
        let clients: Vec<ClientTask<'_>> = (0..16u64)
            .map(|i| {
                let (ends, fabric) = (&ends, &dep.fabric);
                (
                    NodeId::new(i % 8),
                    Box::new(move |cl: BlobClient| {
                        cl.append(blob, &[i as u8; BLOCK as usize]).unwrap();
                        ends.lock()
                            .unwrap()
                            .push((i, fabric.gate().now().as_nanos()));
                    }) as Box<dyn FnOnce(BlobClient) + Send>,
                )
            })
            .collect();
        dep.run_clients(clients);
        (
            ends.into_inner().unwrap(),
            dep.now().as_nanos(),
            dep.sys.layout_vector(),
        )
    };
    assert_eq!(run(7), run(7), "same seed, same interleaving, same clocks");
}
