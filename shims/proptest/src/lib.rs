//! Minimal, API-compatible stand-in for the `proptest` crate, vendored
//! because the build environment has no crates.io access.
//!
//! Supported surface (what this workspace's property tests use):
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header
//! * [`Strategy`] for integer ranges, tuples, [`any`], `prop_map`,
//!   [`prop_oneof!`] and [`collection::vec`]
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`]
//! * [`sample::Index`]
//!
//! Unlike real proptest there is **no shrinking**: a failing case reports
//! its generated inputs (via `Debug`) and the deterministic per-case seed,
//! which is reproducible because generation is seeded from the test name
//! and case number only.
#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::Rng as _;

pub mod test_runner {
    /// Subset of proptest's run configuration: just the case count.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

/// A generator of random values of an associated type.
///
/// The real crate builds value *trees* to support shrinking; this shim
/// generates plain values.
pub trait Strategy {
    type Value: std::fmt::Debug;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: std::fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map {
            source: self,
            func: f,
        }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    func: F,
}

impl<S: Strategy, U: std::fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.func)(self.source.generate(rng))
    }
}

/// Uniform choice between boxed strategies (backs [`prop_oneof!`]).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T: std::fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.0.len());
        self.0[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

/// Strategy returned by [`any`] for primitive types.
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for AnyStrategy<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.gen_range(0u8..2) == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyStrategy<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyStrategy(std::marker::PhantomData)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod sample {
    use super::{Arbitrary, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng as _;

    /// A value that picks an index into a runtime-sized collection
    /// (proptest's `prop::sample::Index`).
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Maps this sample onto `0..size`. Panics when `size == 0`,
        /// matching the real crate.
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "Index::index on empty collection");
            (self.0 % size as u64) as usize
        }
    }

    /// Strategy behind `any::<Index>()`.
    pub struct IndexStrategy;

    impl Strategy for IndexStrategy {
        type Value = Index;
        fn generate(&self, rng: &mut StdRng) -> Index {
            Index(rng.gen_range(0u64..=u64::MAX))
        }
    }

    impl Arbitrary for Index {
        type Strategy = IndexStrategy;
        fn arbitrary() -> Self::Strategy {
            IndexStrategy
        }
    }
}

pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng as _;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "empty length range for collection::vec");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Derives the deterministic per-case RNG for `(test name, case index)`.
/// FNV-1a over the name, mixed with the case number.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    use rand::SeedableRng as _;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// Prints the failing case's inputs when the test body unwinds. The guard
/// is forgotten on success, so it only fires on the panic path.
pub struct FailureReporter {
    pub test: &'static str,
    pub case: u32,
    pub inputs: String,
}

impl Drop for FailureReporter {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest shim: `{}` failed at case {} with inputs:\n{}",
                self.test, self.case, self.inputs
            );
        }
    }
}

/// The proptest harness macro. Expands each `fn name(arg in strategy, ..)`
/// into a `#[test]` that runs `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (@run ($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::case_rng(stringify!($name), __case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __reporter = $crate::FailureReporter {
                        test: stringify!($name),
                        case: __case,
                        inputs: format!(
                            concat!($("  ", stringify!($arg), " = {:?}\n",)+),
                            $(&$arg,)+
                        ),
                    };
                    $body
                    std::mem::forget(__reporter);
                }
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Assertion macros: plain asserts (no shrink-and-replay machinery).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// Only valid inside a [`proptest!`] body: it `continue`s the case loop,
/// dropping the case's [`FailureReporter`] on the non-panicking path where
/// it stays silent.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::case_rng("unit", 0);
        let s = (1u8..=4, 10usize..20);
        for _ in 0..100 {
            let (a, b) = Strategy::generate(&s, &mut rng);
            assert!((1..=4).contains(&a));
            assert!((10..20).contains(&b));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let s = prop_oneof![(0u16..1).prop_map(|_| 0u16), (0u16..1).prop_map(|_| 1u16)];
        let mut rng = crate::case_rng("arms", 0);
        let mut seen = [false; 2];
        for _ in 0..200 {
            seen[Strategy::generate(&s, &mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn vec_lengths_respect_range() {
        let s = crate::collection::vec(any::<u8>(), 2..5);
        let mut rng = crate::case_rng("lens", 1);
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn case_rng_is_deterministic() {
        let a: Vec<u8> = {
            let mut r = crate::case_rng("t", 3);
            (0..8)
                .map(|_| Strategy::generate(&(0u8..=255), &mut r))
                .collect()
        };
        let b: Vec<u8> = {
            let mut r = crate::case_rng("t", 3);
            (0..8)
                .map(|_| Strategy::generate(&(0u8..=255), &mut r))
                .collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn harness_macro_runs_cases(x in 0u32..100, ys in crate::collection::vec(any::<bool>(), 0..4)) {
            prop_assume!(x != 55);
            prop_assert!(x < 100);
            prop_assert_eq!(ys.len() < 4, true);
        }
    }
}
