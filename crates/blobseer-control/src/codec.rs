//! Wire codec for replicated version-manager commands.
//!
//! A [`Command`] is the unit of replication: the leader encodes one per
//! successful mutating call, appends it to its log and ships it to the
//! followers, and every replica replays the same byte-identical sequence
//! into its own `VersionManager`. Decoding therefore runs against
//! *persisted* bytes (crash recovery) as well as freshly produced ones,
//! so every malformed input must surface as an [`Error`] — this file is
//! in the workspace `no-panic-decode` lint scope.

use blobseer_core::version_manager::WriteIntent;
use blobseer_types::wire::{WireReader, WireWriter};
use blobseer_types::{BlobId, Error, Result, Version};

const CMD_CREATE_BLOB: u8 = 0;
const CMD_BRANCH: u8 = 1;
const CMD_ASSIGN: u8 = 2;
const CMD_COMMIT: u8 = 3;
const CMD_DELETE_BLOB: u8 = 4;
const CMD_COLLECT_BEFORE: u8 = 5;

const INTENT_WRITE: u8 = 0;
const INTENT_APPEND: u8 = 1;

/// One replicated mutation, tagged with its submitter and sequence number
/// so replicas can deduplicate retried submissions (exactly-once across
/// leader failover).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Command {
    /// Stable id of the submitting client endpoint (one service instance
    /// uses a single id; the field keeps the log format multi-client).
    pub client_id: u64,
    /// Submission sequence number, unique per `client_id`.
    pub seq: u64,
    /// The mutation itself.
    pub kind: CommandKind,
}

/// The mutating half of the `VersionService` port — the only calls that
/// change version-manager state, and therefore the only ones replicated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommandKind {
    /// `create_blob()`.
    CreateBlob,
    /// `branch(parent, at)`.
    Branch {
        /// The BLOB being forked.
        parent: BlobId,
        /// The (revealed) version to fork at.
        at: Version,
    },
    /// `assign(blob, intent)` — the serialization point.
    Assign {
        /// The BLOB being written.
        blob: BlobId,
        /// What the writer wants to do.
        intent: WriteIntent,
    },
    /// `commit(blob, version)`.
    Commit {
        /// The BLOB whose write is finishing.
        blob: BlobId,
        /// The version assigned to that write.
        version: Version,
    },
    /// `delete_blob(blob)`.
    DeleteBlob {
        /// The BLOB to delete.
        blob: BlobId,
    },
    /// `collect_before(blob, keep_from)`.
    CollectBefore {
        /// The BLOB being pruned.
        blob: BlobId,
        /// Oldest version that must survive.
        keep_from: Version,
    },
}

/// Encodes `cmd` onto `w`.
pub fn put_command(w: &mut WireWriter, cmd: &Command) {
    w.put_u64(cmd.client_id);
    w.put_u64(cmd.seq);
    match cmd.kind {
        CommandKind::CreateBlob => w.put_u8(CMD_CREATE_BLOB),
        CommandKind::Branch { parent, at } => {
            w.put_u8(CMD_BRANCH);
            w.put_u64(parent.raw());
            w.put_u64(at.raw());
        }
        CommandKind::Assign { blob, intent } => {
            w.put_u8(CMD_ASSIGN);
            w.put_u64(blob.raw());
            match intent {
                WriteIntent::Write { offset, size } => {
                    w.put_u8(INTENT_WRITE);
                    w.put_u64(offset);
                    w.put_u64(size);
                }
                WriteIntent::Append { size } => {
                    w.put_u8(INTENT_APPEND);
                    w.put_u64(size);
                }
            }
        }
        CommandKind::Commit { blob, version } => {
            w.put_u8(CMD_COMMIT);
            w.put_u64(blob.raw());
            w.put_u64(version.raw());
        }
        CommandKind::DeleteBlob { blob } => {
            w.put_u8(CMD_DELETE_BLOB);
            w.put_u64(blob.raw());
        }
        CommandKind::CollectBefore { blob, keep_from } => {
            w.put_u8(CMD_COLLECT_BEFORE);
            w.put_u64(blob.raw());
            w.put_u64(keep_from.raw());
        }
    }
}

/// Decodes one [`Command`] from `r`. Malformed bytes (an unknown tag, a
/// truncated field) surface as [`Error::Storage`] — never a panic.
pub fn get_command(r: &mut WireReader<'_>) -> Result<Command> {
    let client_id = r.get_u64()?;
    let seq = r.get_u64()?;
    let kind = match r.get_u8()? {
        CMD_CREATE_BLOB => CommandKind::CreateBlob,
        CMD_BRANCH => CommandKind::Branch {
            parent: BlobId::new(r.get_u64()?),
            at: Version::new(r.get_u64()?),
        },
        CMD_ASSIGN => {
            let blob = BlobId::new(r.get_u64()?);
            let intent = match r.get_u8()? {
                INTENT_WRITE => WriteIntent::Write {
                    offset: r.get_u64()?,
                    size: r.get_u64()?,
                },
                INTENT_APPEND => WriteIntent::Append { size: r.get_u64()? },
                t => {
                    return Err(Error::Storage(format!(
                        "replicated log: unknown write-intent tag {t}"
                    )))
                }
            };
            CommandKind::Assign { blob, intent }
        }
        CMD_COMMIT => CommandKind::Commit {
            blob: BlobId::new(r.get_u64()?),
            version: Version::new(r.get_u64()?),
        },
        CMD_DELETE_BLOB => CommandKind::DeleteBlob {
            blob: BlobId::new(r.get_u64()?),
        },
        CMD_COLLECT_BEFORE => CommandKind::CollectBefore {
            blob: BlobId::new(r.get_u64()?),
            keep_from: Version::new(r.get_u64()?),
        },
        t => {
            return Err(Error::Storage(format!(
                "replicated log: unknown command tag {t}"
            )))
        }
    };
    Ok(Command {
        client_id,
        seq,
        kind,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(cmd: Command) {
        let mut w = WireWriter::new();
        put_command(&mut w, &cmd);
        let bytes = w.into_vec();
        let mut r = WireReader::new(&bytes);
        assert_eq!(get_command(&mut r).unwrap(), cmd);
        r.finish().unwrap();
    }

    #[test]
    fn commands_roundtrip() {
        let kinds = [
            CommandKind::CreateBlob,
            CommandKind::Branch {
                parent: BlobId::new(7),
                at: Version::new(3),
            },
            CommandKind::Assign {
                blob: BlobId::new(1),
                intent: WriteIntent::Write {
                    offset: 4096,
                    size: 128,
                },
            },
            CommandKind::Assign {
                blob: BlobId::new(2),
                intent: WriteIntent::Append { size: u64::MAX },
            },
            CommandKind::Commit {
                blob: BlobId::new(9),
                version: Version::new(12),
            },
            CommandKind::DeleteBlob {
                blob: BlobId::new(4),
            },
            CommandKind::CollectBefore {
                blob: BlobId::new(5),
                keep_from: Version::new(2),
            },
        ];
        for (i, kind) in kinds.into_iter().enumerate() {
            roundtrip(Command {
                client_id: i as u64,
                seq: 1_000 + i as u64,
                kind,
            });
        }
    }

    #[test]
    fn malformed_bytes_error_instead_of_panicking() {
        // Unknown command tag.
        let mut w = WireWriter::new();
        w.put_u64(0);
        w.put_u64(1);
        w.put_u8(99);
        let bytes = w.into_vec();
        assert!(get_command(&mut WireReader::new(&bytes)).is_err());

        // Unknown intent tag.
        let mut w = WireWriter::new();
        w.put_u64(0);
        w.put_u64(1);
        w.put_u8(CMD_ASSIGN);
        w.put_u64(3);
        w.put_u8(42);
        let bytes = w.into_vec();
        assert!(get_command(&mut WireReader::new(&bytes)).is_err());

        // Every truncation of a valid encoding errors cleanly.
        let mut w = WireWriter::new();
        put_command(
            &mut w,
            &Command {
                client_id: 8,
                seq: 21,
                kind: CommandKind::Assign {
                    blob: BlobId::new(3),
                    intent: WriteIntent::Write {
                        offset: 70_000,
                        size: 300,
                    },
                },
            },
        );
        let bytes = w.into_vec();
        for cut in 0..bytes.len() {
            assert!(
                get_command(&mut WireReader::new(&bytes[..cut])).is_err(),
                "truncation at {cut} decoded"
            );
        }
    }
}
