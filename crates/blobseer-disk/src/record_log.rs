//! Disk-backed metadata DHT: one append-only **record log** plus an
//! in-memory **memtable** per shard.
//!
//! Tree nodes are immutable once published (§III-A.4: "no existing data
//! or metadata is ever modified"), so the classic LSM machinery —
//! compaction, levels, bloom filters — buys nothing here: a shard is
//! simply the replay of its record log, and the memtable IS the whole
//! table. Each record is one [`FrameLog`] frame whose payload reuses the
//! metadata wire codecs ([`blobseer_core::meta::codec`]), so the bytes a
//! node travels the RPC wire in are the bytes it rests on disk in:
//!
//! ```text
//! put:       tag 1 | node key | tree node
//! tombstone: tag 2 | node key
//! ```
//!
//! Keys shard by `hash64 % shards` — the *same* placement as the
//! in-memory [`blobseer_core::dht::MetaDht`], so a deployment can swap
//! backends without moving any key. [`DiskMetaStore`] stores a single
//! copy per node: durability comes from the log, not from replica
//! shards, so `metadata_replication` does not apply to this backend
//! (the cluster wiring documents this).
//!
//! Semantics mirror the in-memory DHT exactly where the equivalence
//! suite can see them: puts counted before the conflict check,
//! conflicting re-puts rejected in every build profile with the stored
//! copy untouched, idempotent re-puts appending nothing, deletes leaving
//! the op counters alone. `crash_shard` truncates the shard's log *and*
//! clears its memtable — on disk, losing a shard means losing its file.

use crate::frame::FrameLog;
use blobseer_core::meta::codec::{get_node_key, get_tree_node, put_node_key, put_tree_node};
use blobseer_core::meta::key::NodeKey;
use blobseer_core::meta::node::TreeNode;
use blobseer_core::ports::MetaStore;
use blobseer_core::sharded::group_indices_by;
use blobseer_types::wire::{WireReader, WireWriter};
use blobseer_types::{Error, Result};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const REC_PUT: u8 = 1;
const REC_TOMBSTONE: u8 = 2;

/// One metadata shard: its record log and memtable.
struct DiskShard {
    path: PathBuf,
    /// Serializes appends *and* memtable mutations so log order always
    /// equals apply order.
    log: Mutex<FrameLog>,
    table: RwLock<HashMap<NodeKey, TreeNode>>,
    puts: AtomicU64,
    gets: AtomicU64,
}

fn load_shard(path: &Path) -> Result<(FrameLog, HashMap<NodeKey, TreeNode>)> {
    let mut table = HashMap::new();
    let log = FrameLog::open_with(path, |_, payload| {
        let mut r = WireReader::new(payload);
        let tag = r.get_u8().map_err(|e| bad_record(path, &e))?;
        let key = get_node_key(&mut r).map_err(|e| bad_record(path, &e))?;
        match tag {
            REC_PUT => {
                let node = get_tree_node(&mut r).map_err(|e| bad_record(path, &e))?;
                table.insert(key, node);
            }
            REC_TOMBSTONE => {
                table.remove(&key);
            }
            t => {
                return Err(Error::Storage(format!(
                    "{}: unknown metadata record tag {t}",
                    path.display()
                )))
            }
        }
        Ok(())
    })?;
    Ok((log, table))
}

fn bad_record(path: &Path, e: &Error) -> Error {
    Error::Storage(format!(
        "{}: undecodable metadata record: {e}",
        path.display()
    ))
}

fn encode_put(key: &NodeKey, node: &TreeNode) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u8(REC_PUT);
    put_node_key(&mut w, key);
    put_tree_node(&mut w, node);
    w.into_vec()
}

fn encode_tombstone(key: &NodeKey) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u8(REC_TOMBSTONE);
    put_node_key(&mut w, key);
    w.into_vec()
}

impl DiskShard {
    fn open(path: PathBuf) -> Result<Self> {
        let (log, table) = load_shard(&path)?;
        Ok(Self {
            path,
            log: Mutex::named(log, "disk.record_log.log"),
            table: RwLock::named(table, "disk.record_log.table"),
            puts: AtomicU64::new(0),
            gets: AtomicU64::new(0),
        })
    }

    fn reopen(&self) -> Result<()> {
        let mut log = self.log.lock();
        let mut table = self.table.write();
        let (new_log, new_table) = load_shard(&self.path)?;
        *log = new_log;
        *table = new_table;
        self.puts.store(0, Ordering::Relaxed);
        self.gets.store(0, Ordering::Relaxed);
        Ok(())
    }

    /// Applies one put under the log lock; counters already bumped.
    fn put_locked(&self, log: &mut FrameLog, key: NodeKey, node: TreeNode) -> Result<()> {
        {
            let table = self.table.read();
            if let Some(existing) = table.get(&key) {
                if existing != &node {
                    return Err(Error::MetadataConflict(format!("{key:?}")));
                }
                return Ok(());
            }
        }
        log.append(&encode_put(&key, &node))?;
        self.table.write().insert(key, node);
        Ok(())
    }

    fn put(&self, key: NodeKey, node: TreeNode) -> Result<()> {
        self.puts.fetch_add(1, Ordering::Relaxed);
        let mut log = self.log.lock();
        self.put_locked(&mut log, key, node)
    }

    /// Batched put: items land in batch order, fresh records are
    /// written with one `write_all`.
    fn put_many(&self, items: &[(NodeKey, TreeNode)]) -> Vec<Result<()>> {
        self.puts.fetch_add(items.len() as u64, Ordering::Relaxed);
        let mut log = self.log.lock();
        let mut out: Vec<Result<()>> = (0..items.len()).map(|_| Ok(())).collect();
        // First pass decides per item against the table plus the batch's
        // own earlier items (an intra-batch re-put must see them).
        let mut fresh: Vec<(usize, Vec<u8>)> = Vec::new();
        {
            let table = self.table.read();
            let mut staged: HashMap<NodeKey, usize> = HashMap::new();
            for (i, (key, node)) in items.iter().enumerate() {
                let existing = table
                    .get(key)
                    .or_else(|| staged.get(key).map(|&j| &items[j].1));
                match existing {
                    Some(prev) if prev != node => {
                        out[i] = Err(Error::MetadataConflict(format!("{key:?}")));
                    }
                    Some(_) => {}
                    None => {
                        staged.insert(*key, i);
                        fresh.push((i, encode_put(key, node)));
                    }
                }
            }
        }
        if let Err(e) = log.append_many(fresh.iter().map(|(_, p)| p.as_slice())) {
            for (i, _) in &fresh {
                out[*i] = Err(e.clone());
            }
            return out;
        }
        let mut table = self.table.write();
        for (i, _) in fresh {
            let (key, node) = &items[i];
            table.insert(*key, node.clone());
        }
        out
    }

    fn get(&self, key: &NodeKey) -> Result<TreeNode> {
        self.gets.fetch_add(1, Ordering::Relaxed);
        self.table
            .read()
            .get(key)
            .cloned()
            .ok_or_else(|| Error::MissingMetadata(format!("{key:?}")))
    }

    fn get_many(&self, keys: &[NodeKey]) -> Vec<Result<TreeNode>> {
        self.gets.fetch_add(keys.len() as u64, Ordering::Relaxed);
        let table = self.table.read();
        keys.iter()
            .map(|key| {
                table
                    .get(key)
                    .cloned()
                    .ok_or_else(|| Error::MissingMetadata(format!("{key:?}")))
            })
            .collect()
    }

    fn delete(&self, key: &NodeKey) -> Result<bool> {
        let mut log = self.log.lock();
        if !self.table.read().contains_key(key) {
            return Ok(false);
        }
        log.append(&encode_tombstone(key))?;
        self.table.write().remove(key);
        Ok(true)
    }

    fn delete_many(&self, keys: &[NodeKey]) -> Vec<Result<bool>> {
        let mut log = self.log.lock();
        let mut out: Vec<Result<bool>> = vec![Ok(false); keys.len()];
        let mut doomed: Vec<(usize, Vec<u8>)> = Vec::new();
        {
            let table = self.table.read();
            let mut pending: HashMap<NodeKey, ()> = HashMap::new();
            for (i, key) in keys.iter().enumerate() {
                if table.contains_key(key) && !pending.contains_key(key) {
                    pending.insert(*key, ());
                    doomed.push((i, encode_tombstone(key)));
                }
            }
        }
        if let Err(e) = log.append_many(doomed.iter().map(|(_, p)| p.as_slice())) {
            for (i, _) in &doomed {
                out[*i] = Err(e.clone());
            }
            return out;
        }
        let mut table = self.table.write();
        for (i, _) in doomed {
            table.remove(&keys[i]);
            out[i] = Ok(true);
        }
        out
    }

    fn crash(&self) {
        let mut log = self.log.lock();
        let mut table = self.table.write();
        // Losing a disk shard means losing its file; truncate so a
        // reopen agrees with the in-memory view.
        log.truncate_all()
            .expect("crash_shard: truncating the shard log failed"); // lint:allow(no-unwrap): crash hook; a failing simulated truncate is itself a bug
        table.clear();
    }

    fn node_count(&self) -> usize {
        self.table.read().len()
    }

    fn op_counts(&self) -> (u64, u64) {
        (
            self.puts.load(Ordering::Relaxed),
            self.gets.load(Ordering::Relaxed),
        )
    }
}

/// A disk-backed [`MetaStore`]: `n` shard record logs under one
/// directory, keys placed by `hash64 % n` exactly like the in-memory
/// DHT.
pub struct DiskMetaStore {
    shards: Vec<DiskShard>,
}

/// The record-log file backing metadata shard `i` under `dir`.
pub fn shard_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:03}.log"))
}

impl DiskMetaStore {
    /// Opens (or creates) a store of `n` shards under `dir`, replaying
    /// each shard's record log into its memtable.
    pub fn open(dir: impl AsRef<Path>, n: usize) -> Result<Self> {
        assert!(n > 0, "need at least one metadata shard");
        let dir = dir.as_ref();
        let shards = (0..n)
            .map(|i| DiskShard::open(shard_path(dir, i)))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self { shards })
    }

    #[inline]
    fn shard_of(&self, key: &NodeKey) -> usize {
        (key.hash64() % self.shards.len() as u64) as usize
    }

    /// Reopens every shard in place (simulated restart): rescans the
    /// record logs, rebuilds the memtables, resets the op counters.
    pub fn reopen(&self) -> Result<()> {
        for s in &self.shards {
            s.reopen()?;
        }
        Ok(())
    }

    /// Forces every shard's appended records to stable storage.
    pub fn sync(&self) -> Result<()> {
        for s in &self.shards {
            s.log.lock().sync()?;
        }
        Ok(())
    }
}

impl MetaStore for DiskMetaStore {
    fn put(&self, key: NodeKey, node: TreeNode) -> Result<()> {
        self.shards[self.shard_of(&key)].put(key, node)
    }

    fn get(&self, key: &NodeKey) -> Result<TreeNode> {
        self.shards[self.shard_of(key)].get(key)
    }

    fn delete(&self, key: &NodeKey) -> bool {
        // The trait's single delete is infallible; an append failure here
        // means the log and memtable could diverge, so treat it as fatal
        // rather than lie about the outcome.
        self.shards[self.shard_of(key)]
            .delete(key)
            .expect("metadata shard log append failed during delete") // lint:allow(no-unwrap): in-memory delete already applied; diverging is fatal
    }

    fn put_many(&self, items: &[(NodeKey, TreeNode)]) -> Vec<Result<()>> {
        let mut out: Vec<Result<()>> = (0..items.len()).map(|_| Ok(())).collect();
        for (shard, range) in group_indices_by(items.iter().map(|(k, _)| k), |k| self.shard_of(k)) {
            let group: Vec<(NodeKey, TreeNode)> = range.iter().map(|&i| items[i].clone()).collect();
            for (slot, result) in range.into_iter().zip(self.shards[shard].put_many(&group)) {
                out[slot] = result;
            }
        }
        out
    }

    fn get_many(&self, keys: &[NodeKey]) -> Vec<Result<TreeNode>> {
        let mut out: Vec<Result<TreeNode>> = keys
            .iter()
            .map(|key| Err(Error::MissingMetadata(format!("{key:?}"))))
            .collect();
        for (shard, range) in group_indices_by(keys.iter(), |k| self.shard_of(k)) {
            let group: Vec<NodeKey> = range.iter().map(|&i| keys[i]).collect();
            for (slot, found) in range.into_iter().zip(self.shards[shard].get_many(&group)) {
                out[slot] = found;
            }
        }
        out
    }

    fn delete_many(&self, keys: &[NodeKey]) -> Vec<Result<bool>> {
        let mut out: Vec<Result<bool>> = vec![Ok(false); keys.len()];
        for (shard, range) in group_indices_by(keys.iter(), |k| self.shard_of(k)) {
            let group: Vec<NodeKey> = range.iter().map(|&i| keys[i]).collect();
            for (slot, result) in range
                .into_iter()
                .zip(self.shards[shard].delete_many(&group))
            {
                out[slot] = result;
            }
        }
        out
    }

    fn fanout_shard(&self, key: &NodeKey) -> usize {
        self.shard_of(key)
    }

    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn node_count(&self) -> usize {
        self.shards.iter().map(|s| s.node_count()).sum()
    }

    fn shard_stats(&self) -> Vec<(usize, u64, u64)> {
        self.shards
            .iter()
            .map(|s| {
                let (p, g) = s.op_counts();
                (s.node_count(), p, g)
            })
            .collect()
    }

    fn crash_shard(&self, shard: usize) {
        self.shards[shard].crash();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;
    use blobseer_core::meta::key::Pos;
    use blobseer_core::meta::node::BlockDescriptor;
    use blobseer_types::{BlobId, BlockId, Version};

    fn key(v: u64, start: u64, len: u64) -> NodeKey {
        NodeKey::new(BlobId::new(1), Version::new(v), Pos::new(start, len))
    }

    fn leaf(b: u64) -> TreeNode {
        TreeNode::Leaf(BlockDescriptor {
            block_id: BlockId::new(b),
            providers: vec![0],
            len: 64,
        })
    }

    #[test]
    fn put_get_roundtrip_and_missing() {
        let tmp = TempDir::new("meta-roundtrip");
        let store = DiskMetaStore::open(tmp.path(), 4).unwrap();
        store.put(key(1, 0, 1), leaf(10)).unwrap();
        assert_eq!(store.get(&key(1, 0, 1)).unwrap(), leaf(10));
        assert!(matches!(
            store.get(&key(2, 0, 1)),
            Err(Error::MissingMetadata(_))
        ));
        assert_eq!(store.shard_count(), 4);
        assert_eq!(store.node_count(), 1);
    }

    #[test]
    fn nodes_survive_close_and_reopen() {
        let tmp = TempDir::new("meta-reopen");
        let store = DiskMetaStore::open(tmp.path(), 4).unwrap();
        for v in 0..64 {
            store.put(key(v, 0, 1), leaf(v)).unwrap();
        }
        assert!(store.delete(&key(3, 0, 1)));
        drop(store);

        let store = DiskMetaStore::open(tmp.path(), 4).unwrap();
        assert_eq!(store.node_count(), 63);
        for v in 0..64 {
            if v == 3 {
                assert!(store.get(&key(v, 0, 1)).is_err(), "tombstone replayed");
            } else {
                assert_eq!(store.get(&key(v, 0, 1)).unwrap(), leaf(v));
            }
        }
    }

    #[test]
    fn placement_matches_the_in_memory_dht() {
        let tmp = TempDir::new("meta-placement");
        let store = DiskMetaStore::open(tmp.path(), 8).unwrap();
        let dht = blobseer_core::dht::MetaDht::new(8, 1);
        for v in 0..128 {
            let k = key(v, 0, 1);
            assert_eq!(store.fanout_shard(&k), dht.shard_of(&k), "key {v}");
        }
    }

    #[test]
    fn conflicting_reput_is_rejected_and_original_kept() {
        let tmp = TempDir::new("meta-conflict");
        let store = DiskMetaStore::open(tmp.path(), 2).unwrap();
        store.put(key(1, 0, 1), leaf(10)).unwrap();
        let err = store.put(key(1, 0, 1), leaf(11)).unwrap_err();
        assert!(matches!(err, Error::MetadataConflict(_)), "{err}");
        // The forged node never reached the log either: replay agrees.
        store.reopen().unwrap();
        assert_eq!(store.get(&key(1, 0, 1)).unwrap(), leaf(10));
    }

    #[test]
    fn idempotent_reput_appends_nothing() {
        let tmp = TempDir::new("meta-idem");
        let store = DiskMetaStore::open(tmp.path(), 1).unwrap();
        store.put(key(1, 0, 1), leaf(10)).unwrap();
        let len = std::fs::metadata(shard_path(tmp.path(), 0)).unwrap().len();
        store.put(key(1, 0, 1), leaf(10)).unwrap();
        assert_eq!(
            std::fs::metadata(shard_path(tmp.path(), 0)).unwrap().len(),
            len
        );
        let stats = store.shard_stats();
        assert_eq!(stats[0], (1, 2, 0), "both puts counted, no gets");
    }

    #[test]
    fn vectored_ops_and_intra_batch_conflicts() {
        let tmp = TempDir::new("meta-vectored");
        let store = DiskMetaStore::open(tmp.path(), 4).unwrap();
        let items = vec![
            (key(1, 0, 1), leaf(1)),
            (key(2, 0, 1), leaf(2)),
            (key(1, 0, 1), leaf(1)),  // idempotent intra-batch re-put
            (key(1, 0, 1), leaf(99)), // conflicting intra-batch re-put
        ];
        let out = store.put_many(&items);
        assert!(out[0].is_ok() && out[1].is_ok() && out[2].is_ok());
        assert!(matches!(out[3], Err(Error::MetadataConflict(_))));
        assert_eq!(store.get(&key(1, 0, 1)).unwrap(), leaf(1));

        let keys = vec![key(1, 0, 1), key(9, 0, 1), key(2, 0, 1)];
        let got = store.get_many(&keys);
        assert_eq!(got[0], Ok(leaf(1)));
        assert!(got[1].is_err());
        assert_eq!(got[2], Ok(leaf(2)));

        let deleted = store.delete_many(&[key(1, 0, 1), key(1, 0, 1), key(9, 0, 1)]);
        assert_eq!(deleted, vec![Ok(true), Ok(false), Ok(false)]);
        assert_eq!(store.node_count(), 1);
    }

    #[test]
    fn crash_shard_loses_its_file_too() {
        let tmp = TempDir::new("meta-crash");
        let store = DiskMetaStore::open(tmp.path(), 2).unwrap();
        for v in 0..32 {
            store.put(key(v, 0, 1), leaf(v)).unwrap();
        }
        store.crash_shard(0);
        let survivors = store.node_count();
        assert!(survivors < 32, "shard 0 held something");
        // The loss is durable: a reopen sees the same survivors.
        store.reopen().unwrap();
        assert_eq!(store.node_count(), survivors);
    }

    #[test]
    fn in_place_reopen_preserves_state_and_resets_counters() {
        let tmp = TempDir::new("meta-inplace");
        let store = DiskMetaStore::open(tmp.path(), 4).unwrap();
        for v in 0..32 {
            store.put(key(v, 0, 1), leaf(v)).unwrap();
        }
        let _ = store.get(&key(1, 0, 1));
        store.reopen().unwrap();
        assert_eq!(store.node_count(), 32);
        assert_eq!(store.get(&key(7, 0, 1)).unwrap(), leaf(7));
        let (_, puts, gets) = store
            .shard_stats()
            .into_iter()
            .fold((0usize, 0u64, 0u64), |(n, p, g), (sn, sp, sg)| {
                (n + sn, p + sp, g + sg)
            });
        assert_eq!(puts, 0, "op counters are per process");
        assert_eq!(gets, 1, "only the post-reopen get counted");
    }
}
