//! Wire codec for the port-trait domain types and the framing layer.
//!
//! Messages are length-prefixed, request-correlated binary frames:
//!
//! ```text
//! varint length | varint request id | body (length − id bytes)
//! ```
//!
//! The length covers the request id and the body, so a peer can skip a
//! whole frame knowing only the prefix. The request id is chosen by the
//! client and echoed verbatim on the response frame; it is what lets many
//! in-flight requests share one TCP connection — the server may answer
//! out of order (a parked `wait_revealed` no longer blocks the answers
//! behind it) and the client's demux thread routes each response to the
//! waiter that sent the matching id. Bodies are built from the primitives
//! in [`blobseer_types::wire`] (varints, length-prefixed byte strings);
//! this module adds codecs for every composite type that crosses a port
//! boundary — tree nodes, node keys, write tickets (including the full
//! log chain), snapshot infos, block allocations — plus request framing
//! for the three services.
//!
//! Every decode validates its input and fails with
//! [`blobseer_types::Error::Transport`]; a malformed frame can never
//! panic a server or client thread.

use blobseer_core::gc::GcReport;
use blobseer_core::meta::key::NodeKey;
use blobseer_core::meta::log::{LogChain, LogEntry, LogSegment};
use blobseer_core::provider_manager::BlockAllocation;
use blobseer_core::version_manager::{SnapshotInfo, WriteIntent, WriteTicket};
use blobseer_types::wire::{WireReader, WireWriter};
use blobseer_types::{BlobId, BlockId, Error, Result, Version};
use parking_lot::RwLock;
use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Duration;

/// Upper bound on an accepted frame body (64 MB block + headroom). A
/// corrupt length prefix must not make a peer attempt a huge allocation.
pub const MAX_FRAME_LEN: u64 = 80 * 1024 * 1024;

/// Soft payload budget for one vectored (`*_many`) frame, comfortably
/// under [`MAX_FRAME_LEN`]. Clients chunk batched *puts* so each request
/// frame stays within it; servers answering batched *gets* stop encoding
/// payloads at it and mark the tail [`batch_status::DEFERRED`] for the
/// client to re-request — either way a batch of 64 MB blocks can never
/// assemble an over-cap frame.
pub const BATCH_BYTE_BUDGET: usize = 64 * 1024 * 1024;

/// Per-item status bytes of the vectored (`*_many`) response frames.
pub mod batch_status {
    /// The item succeeded; its payload (if any) follows.
    pub const OK: u8 = 0;
    /// The item failed; its encoded [`blobseer_types::Error`] follows.
    pub const ERR: u8 = 1;
    /// The item was *not processed*: including its payload would have
    /// pushed the response frame past [`super::BATCH_BYTE_BUDGET`]. The
    /// client re-requests deferred items in a follow-up frame.
    pub const DEFERRED: u8 = 2;
}

/// Encodes one per-item outcome (status byte, then the error payload for
/// failures; the caller writes any success payload itself).
pub fn put_item_status<T>(w: &mut WireWriter, result: &Result<T>) {
    match result {
        Ok(_) => w.put_u8(batch_status::OK),
        Err(e) => {
            w.put_u8(batch_status::ERR);
            w.put_error(e);
        }
    }
}

/// Maps an I/O failure into [`Error::Transport`] with context.
pub(crate) fn transport(context: &str, e: std::io::Error) -> Error {
    Error::Transport(format!("{context}: {e}"))
}

/// Writes one length-prefixed frame tagged with `req_id`. The id varint
/// is part of the prefixed length, and a response frame must echo the id
/// of the request it answers.
pub fn write_frame(stream: &mut impl Write, req_id: u64, body: &[u8]) -> Result<()> {
    let mut id = WireWriter::new();
    id.put_u64(req_id);
    let mut prefix = WireWriter::new();
    prefix.put_u64((id.as_slice().len() + body.len()) as u64);
    stream
        .write_all(prefix.as_slice())
        .and_then(|()| stream.write_all(id.as_slice()))
        .and_then(|()| stream.write_all(body))
        .and_then(|()| stream.flush())
        .map_err(|e| transport("write frame", e))
}

/// Reads one length-prefixed frame, returning its request id and body.
/// Returns `Ok(None)` on clean EOF at a frame boundary (the peer closed
/// the connection between requests).
pub fn read_frame(stream: &mut impl Read) -> Result<Option<(u64, Vec<u8>)>> {
    // Read the varint length byte by byte (it is 1–10 bytes).
    let mut len = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        match stream.read(&mut byte) {
            Ok(0) if shift == 0 => return Ok(None), // clean EOF
            Ok(0) => return Err(Error::Transport("eof inside frame length".into())),
            Ok(_) => {}
            Err(e) => return Err(transport("read frame length", e)),
        }
        if shift == 63 && byte[0] > 1 {
            return Err(Error::Transport("frame length overflows u64".into()));
        }
        len |= ((byte[0] & 0x7F) as u64) << shift;
        if byte[0] & 0x80 == 0 {
            break;
        }
        shift += 7;
    }
    if len > MAX_FRAME_LEN {
        return Err(Error::Transport(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte limit"
        )));
    }
    let mut framed = vec![0u8; len as usize];
    stream
        .read_exact(&mut framed)
        .map_err(|e| transport("read frame body", e))?;
    // Split the request-id varint off the front; the rest is the body.
    let mut req_id = 0u64;
    let mut shift = 0u32;
    let mut id_end = None;
    for (i, &byte) in framed.iter().enumerate() {
        if shift == 63 && byte > 1 {
            return Err(Error::Transport("request id overflows u64".into()));
        }
        req_id |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            id_end = Some(i + 1);
            break;
        }
        shift += 7;
    }
    match id_end {
        Some(n) => {
            framed.drain(..n);
            Ok(Some((req_id, framed)))
        }
        None => Err(Error::Transport("frame too short for request id".into())),
    }
}

// --- composite-type codecs --------------------------------------------------

// The metadata domain codecs (positions, node keys, block ranges and
// descriptors, tree nodes) live in `blobseer_core::meta::codec` because
// the disk-backed metadata store persists records in the same encoding;
// re-exported here so wire call sites keep one import surface.
pub use blobseer_core::meta::codec::{
    get_block_descriptor, get_block_range, get_node_key, get_opt_node_ref, get_pos, get_tree_node,
    put_block_descriptor, put_block_range, put_node_key, put_opt_node_ref, put_pos, put_tree_node,
};

/// Encodes a write-log entry.
pub fn put_log_entry(w: &mut WireWriter, e: &LogEntry) {
    w.put_u64(e.version.raw());
    put_block_range(w, e.blocks);
    w.put_u64(e.cap_before);
    w.put_u64(e.cap_after);
    w.put_u64(e.size_after);
}

/// Decodes a write-log entry.
pub fn get_log_entry(r: &mut WireReader<'_>) -> Result<LogEntry> {
    Ok(LogEntry {
        version: Version::new(r.get_u64()?),
        blocks: get_block_range(r)?,
        cap_before: r.get_u64()?,
        cap_after: r.get_u64()?,
        size_after: r.get_u64()?,
    })
}

/// Encodes a snapshot info.
pub fn put_snapshot_info(w: &mut WireWriter, info: &SnapshotInfo) {
    w.put_u64(info.version.raw());
    w.put_u64(info.size);
    w.put_u64(info.cap);
    w.put_u64(info.root_blob.raw());
    w.put_bool(info.revealed);
}

/// Decodes a snapshot info.
pub fn get_snapshot_info(r: &mut WireReader<'_>) -> Result<SnapshotInfo> {
    Ok(SnapshotInfo {
        version: Version::new(r.get_u64()?),
        size: r.get_u64()?,
        cap: r.get_u64()?,
        root_blob: BlobId::new(r.get_u64()?),
        revealed: r.get_bool()?,
    })
}

/// Encodes a write intent.
pub fn put_write_intent(w: &mut WireWriter, intent: WriteIntent) {
    match intent {
        WriteIntent::Write { offset, size } => {
            w.put_u8(0);
            w.put_u64(offset);
            w.put_u64(size);
        }
        WriteIntent::Append { size } => {
            w.put_u8(1);
            w.put_u64(size);
        }
    }
}

/// Decodes a write intent.
pub fn get_write_intent(r: &mut WireReader<'_>) -> Result<WriteIntent> {
    Ok(match r.get_u8()? {
        0 => WriteIntent::Write {
            offset: r.get_u64()?,
            size: r.get_u64()?,
        },
        1 => WriteIntent::Append { size: r.get_u64()? },
        t => {
            return Err(Error::Transport(format!(
                "wire: unknown write-intent tag {t}"
            )))
        }
    })
}

/// Encodes a log chain as a point-in-time snapshot of its segments.
///
/// In-process deployments share the version manager's *live* log vectors
/// through `Arc`; over the wire the client receives a copy. That copy is
/// semantically sufficient for everything a ticket's chain is used for:
/// metadata weaving only consults entries with versions *below* the
/// ticket's, and the version manager appends those under the same per-BLOB
/// mutex that assigned the ticket — they are all present at encode time.
pub fn put_log_chain(w: &mut WireWriter, chain: &LogChain) {
    let segments = chain.segments();
    w.put_u64(segments.len() as u64);
    for seg in segments {
        w.put_u64(seg.blob.raw());
        w.put_u64(seg.vec_base.raw());
        w.put_u64(seg.lo.raw());
        w.put_u64(seg.hi.raw());
        let entries = seg.entries.read();
        w.put_u64(entries.len() as u64);
        for e in entries.iter() {
            put_log_entry(w, e);
        }
    }
}

/// Decodes a log chain (the segments own fresh entry vectors).
pub fn get_log_chain(r: &mut WireReader<'_>) -> Result<LogChain> {
    let n = r.get_u64()? as usize;
    if n == 0 {
        return Err(Error::Transport("wire: empty log chain".into()));
    }
    let mut segments = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let blob = BlobId::new(r.get_u64()?);
        let vec_base = Version::new(r.get_u64()?);
        let lo = Version::new(r.get_u64()?);
        let hi = Version::new(r.get_u64()?);
        let n_entries = r.get_u64()? as usize;
        let mut entries = Vec::with_capacity(n_entries.min(4096));
        for _ in 0..n_entries {
            entries.push(get_log_entry(r)?);
        }
        segments.push(LogSegment {
            blob,
            entries: Arc::new(RwLock::new(entries)),
            vec_base,
            lo,
            hi,
        });
    }
    Ok(LogChain::new(segments))
}

/// Encodes a write ticket (offset, entry and the full log chain).
pub fn put_write_ticket(w: &mut WireWriter, t: &WriteTicket) {
    w.put_u64(t.blob.raw());
    w.put_u64(t.version.raw());
    w.put_u64(t.offset);
    w.put_u64(t.prev_size);
    put_log_entry(w, &t.entry);
    put_log_chain(w, &t.chain);
}

/// Decodes a write ticket.
pub fn get_write_ticket(r: &mut WireReader<'_>) -> Result<WriteTicket> {
    Ok(WriteTicket {
        blob: BlobId::new(r.get_u64()?),
        version: Version::new(r.get_u64()?),
        offset: r.get_u64()?,
        prev_size: r.get_u64()?,
        entry: get_log_entry(r)?,
        chain: get_log_chain(r)?,
    })
}

/// Encodes a block allocation.
pub fn put_block_allocation(w: &mut WireWriter, a: &BlockAllocation) {
    w.put_u64(a.block_id.raw());
    w.put_u64(a.providers.len() as u64);
    for &p in &a.providers {
        w.put_u64(p as u64);
    }
}

/// Decodes a block allocation.
pub fn get_block_allocation(r: &mut WireReader<'_>) -> Result<BlockAllocation> {
    let block_id = BlockId::new(r.get_u64()?);
    let n = r.get_u64()? as usize;
    let mut providers = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        providers.push(r.get_u64()? as usize);
    }
    Ok(BlockAllocation {
        block_id,
        providers,
    })
}

/// Encodes a duration as whole nanoseconds (saturating at ~585 years).
pub fn put_duration(w: &mut WireWriter, d: Duration) {
    w.put_u64(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
}

/// Decodes a duration.
pub fn get_duration(r: &mut WireReader<'_>) -> Result<Duration> {
    Ok(Duration::from_nanos(r.get_u64()?))
}

/// Encodes a list of versions.
pub fn put_versions(w: &mut WireWriter, versions: &[Version]) {
    w.put_u64(versions.len() as u64);
    for v in versions {
        w.put_u64(v.raw());
    }
}

/// Decodes a list of versions.
pub fn get_versions(r: &mut WireReader<'_>) -> Result<Vec<Version>> {
    let n = r.get_u64()? as usize;
    let mut out = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        out.push(Version::new(r.get_u64()?));
    }
    Ok(out)
}

/// Encodes a list of node keys.
pub fn put_node_keys(w: &mut WireWriter, keys: &[NodeKey]) {
    w.put_u64(keys.len() as u64);
    for k in keys {
        put_node_key(w, k);
    }
}

/// Decodes a list of node keys.
pub fn get_node_keys(r: &mut WireReader<'_>) -> Result<Vec<NodeKey>> {
    let n = r.get_u64()? as usize;
    let mut out = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        out.push(get_node_key(r)?);
    }
    Ok(out)
}

/// Encodes a GC report.
pub fn put_gc_report(w: &mut WireWriter, report: &GcReport) {
    w.put_u64(report.nodes_deleted);
    w.put_u64(report.blocks_deleted);
    w.put_u64(report.bytes_freed);
    w.put_u64(report.untracked_releases);
}

/// Decodes a GC report.
pub fn get_gc_report(r: &mut WireReader<'_>) -> Result<GcReport> {
    Ok(GcReport {
        nodes_deleted: r.get_u64()?,
        blocks_deleted: r.get_u64()?,
        bytes_freed: r.get_u64()?,
        untracked_releases: r.get_u64()?,
    })
}

// --- response envelope ------------------------------------------------------

/// Wraps a handler outcome into a response body: status byte `0` followed
/// by the payload, or status byte `1` followed by the encoded [`Error`].
pub fn encode_response(result: Result<WireWriter>) -> Vec<u8> {
    let mut out = WireWriter::new();
    match result {
        Ok(payload) => {
            out.put_u8(0);
            let mut v = out.into_vec();
            v.extend_from_slice(payload.as_slice());
            v
        }
        Err(e) => {
            out.put_u8(1);
            out.put_error(&e);
            out.into_vec()
        }
    }
}

/// Splits a response body into its payload, surfacing an encoded service
/// [`Error`] as itself — failures cross the wire as their real variants,
/// never degraded into transport errors.
pub fn decode_response(body: &[u8]) -> Result<WireReader<'_>> {
    let mut r = WireReader::new(body);
    match r.get_u8()? {
        0 => Ok(r),
        1 => {
            let e = r.get_error()?;
            r.finish()?;
            Err(e)
        }
        s => Err(Error::Transport(format!(
            "wire: unknown response status {s}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blobseer_core::meta::key::{BlockRange, Pos};
    use blobseer_core::meta::node::{BlockDescriptor, NodeRef, TreeNode};

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 7, b"hello").unwrap();
        write_frame(&mut buf, u64::MAX, &[]).unwrap();
        let mut cursor = &buf[..];
        let (id, body) = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!((id, body.as_slice()), (7, &b"hello"[..]));
        let (id, body) = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!((id, body), (u64::MAX, Vec::new()));
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_request_id_is_a_transport_error() {
        // A frame whose length prefix says 1 byte, but that byte has its
        // continuation bit set: the id varint runs off the end.
        let buf = [1u8, 0x80];
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert!(matches!(err, Error::Transport(_)), "{err}");
        // Length 0 cannot even hold an id.
        let buf = [0u8];
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert!(matches!(err, Error::Transport(_)), "{err}");
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut prefix = WireWriter::new();
        prefix.put_u64(MAX_FRAME_LEN + 1);
        let buf = prefix.into_vec();
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert!(matches!(err, Error::Transport(_)), "{err}");
    }

    #[test]
    fn tree_nodes_roundtrip() {
        let nodes = [
            TreeNode::Inner {
                left: Some(NodeRef {
                    blob: BlobId::new(1),
                    version: Version::new(2),
                }),
                right: None,
            },
            TreeNode::Leaf(BlockDescriptor {
                block_id: BlockId::new(u64::MAX),
                providers: vec![0, 7, 300],
                len: u32::MAX,
            }),
            TreeNode::LeafAlias(None),
            TreeNode::LeafAlias(Some(NodeRef {
                blob: BlobId::new(9),
                version: Version::new(1),
            })),
        ];
        for node in &nodes {
            let mut w = WireWriter::new();
            put_tree_node(&mut w, node);
            let mut r = WireReader::new(w.as_slice());
            assert_eq!(&get_tree_node(&mut r).unwrap(), node);
            r.finish().unwrap();
        }
    }

    #[test]
    fn invalid_pos_is_a_transport_error() {
        // len 3 is not a power of two; start 2 is not aligned to len 4.
        for (start, len) in [(0u64, 3u64), (2, 4), (0, 0)] {
            let mut w = WireWriter::new();
            w.put_u64(start);
            w.put_u64(len);
            let mut r = WireReader::new(w.as_slice());
            assert!(matches!(get_pos(&mut r), Err(Error::Transport(_))));
        }
    }

    #[test]
    fn tickets_with_chains_roundtrip() {
        let entry = LogEntry {
            version: Version::new(3),
            blocks: BlockRange::new(2, 5),
            cap_before: 4,
            cap_after: 8,
            size_after: 320,
        };
        let chain = LogChain::new(vec![
            LogSegment {
                blob: BlobId::new(2),
                entries: Arc::new(RwLock::new(vec![entry])),
                vec_base: Version::new(2),
                lo: Version::new(2),
                hi: Version::new(u64::MAX),
            },
            LogSegment {
                blob: BlobId::new(1),
                entries: Arc::new(RwLock::new(vec![
                    LogEntry {
                        version: Version::new(1),
                        blocks: BlockRange::new(0, 2),
                        cap_before: 0,
                        cap_after: 2,
                        size_after: 128,
                    },
                    LogEntry {
                        version: Version::new(2),
                        blocks: BlockRange::new(0, 1),
                        cap_before: 2,
                        cap_after: 2,
                        size_after: 128,
                    },
                ])),
                vec_base: Version::ZERO,
                lo: Version::ZERO,
                hi: Version::new(2),
            },
        ]);
        let ticket = WriteTicket {
            blob: BlobId::new(2),
            version: Version::new(3),
            offset: 128,
            prev_size: 128,
            entry,
            chain,
        };
        let mut w = WireWriter::new();
        put_write_ticket(&mut w, &ticket);
        let mut r = WireReader::new(w.as_slice());
        let back = get_write_ticket(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.blob, ticket.blob);
        assert_eq!(back.version, ticket.version);
        assert_eq!(back.offset, ticket.offset);
        assert_eq!(back.prev_size, ticket.prev_size);
        assert_eq!(back.entry, ticket.entry);
        // The chain copy answers weaving queries identically.
        assert_eq!(back.chain.segments().len(), 2);
        for pos in [
            Pos::new(0, 1),
            Pos::new(1, 1),
            Pos::new(0, 2),
            Pos::new(4, 1),
        ] {
            assert_eq!(
                back.chain.materializer_before(pos, Version::new(3)),
                ticket.chain.materializer_before(pos, Version::new(3)),
                "weave divergence at {pos:?}"
            );
        }
        assert_eq!(
            back.chain.snapshot_geometry(Version::new(2)),
            ticket.chain.snapshot_geometry(Version::new(2))
        );
    }

    #[test]
    fn allocations_snapshots_intents_durations_roundtrip() {
        let a = BlockAllocation {
            block_id: BlockId::new(77),
            providers: vec![0, 3, 9],
        };
        let info = SnapshotInfo {
            version: Version::new(4),
            size: 1000,
            cap: 16,
            root_blob: BlobId::new(2),
            revealed: true,
        };
        let mut w = WireWriter::new();
        put_block_allocation(&mut w, &a);
        put_snapshot_info(&mut w, &info);
        put_write_intent(&mut w, WriteIntent::Write { offset: 5, size: 9 });
        put_write_intent(&mut w, WriteIntent::Append { size: 64 });
        put_duration(&mut w, Duration::from_millis(1500));
        let report = GcReport {
            nodes_deleted: 5,
            blocks_deleted: 3,
            bytes_freed: 4096,
            untracked_releases: 1,
        };
        put_gc_report(&mut w, &report);
        let mut r = WireReader::new(w.as_slice());
        assert_eq!(get_block_allocation(&mut r).unwrap(), a);
        assert_eq!(get_snapshot_info(&mut r).unwrap(), info);
        assert_eq!(
            get_write_intent(&mut r).unwrap(),
            WriteIntent::Write { offset: 5, size: 9 }
        );
        assert_eq!(
            get_write_intent(&mut r).unwrap(),
            WriteIntent::Append { size: 64 }
        );
        assert_eq!(get_duration(&mut r).unwrap(), Duration::from_millis(1500));
        assert_eq!(get_gc_report(&mut r).unwrap(), report);
        r.finish().unwrap();
    }

    #[test]
    fn response_envelope_carries_payloads_and_errors() {
        let mut payload = WireWriter::new();
        payload.put_u64(42);
        let body = encode_response(Ok(payload));
        let mut r = decode_response(&body).unwrap();
        assert_eq!(r.get_u64().unwrap(), 42);

        for e in blobseer_types::wire::error_fixture() {
            let body = encode_response(Err(e.clone()));
            let got = decode_response(&body).unwrap_err();
            assert_eq!(got, e, "error variant must survive the envelope");
        }
    }
}
