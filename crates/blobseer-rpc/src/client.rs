//! Client-side adapters: the three port traits implemented over pooled
//! TCP connections.
//!
//! Each adapter holds a small connection pool per endpoint. A call checks
//! a connection out, writes one request frame, reads one response frame,
//! and returns the connection — so concurrent calls from many client
//! threads each ride their own connection and a blocking call
//! (`wait_revealed`) never head-of-line-blocks another request.
//!
//! Service failures arrive as their real [`Error`] variants (decoded from
//! the response envelope); only genuine connectivity problems — refused
//! connections, resets, malformed frames — surface as
//! [`Error::Transport`].
//!
//! Port methods that return plain values rather than `Result` (they are
//! diagnostics: counts, sizes, op counters) cannot propagate a transport
//! failure; they degrade to a zero/empty answer. The fixed deployment
//! *shape* — provider count, hosting nodes, DHT shard count, block size —
//! is fetched once at connect time and served from cache, so the hot
//! paths that consult it stay local.

use crate::server::{block_tag, meta_tag, version_tag};
use crate::wire::{self, batch_status, decode_response};
use blobseer_core::meta::key::NodeKey;
use blobseer_core::meta::log::LogChain;
use blobseer_core::meta::node::TreeNode;
use blobseer_core::ports::{BlockStore, MetaStore, VersionService};
use blobseer_core::version_manager::{SnapshotInfo, WriteIntent, WriteTicket};
use blobseer_core::EngineStats;
use blobseer_types::wire::{WireReader, WireWriter};
use blobseer_types::{BlobId, BlockId, Error, NodeId, Result, Version};
use bytes::Bytes;
use parking_lot::Mutex;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Idle connections kept per endpoint; checkouts beyond this open fresh
/// connections that are simply dropped on return.
const POOL_KEEP: usize = 8;

/// Max items per vectored *metadata* frame. Tree nodes and node keys are
/// tens of bytes, so this bounds both request and response frames to a
/// few MB — far under [`wire::MAX_FRAME_LEN`] — while still collapsing
/// any realistic tree level into one round trip.
const META_BATCH_MAX: usize = 65_536;

/// A small pool of connections to one endpoint.
pub(crate) struct Pool {
    addr: SocketAddr,
    idle: Mutex<Vec<TcpStream>>,
    /// Deployment counters: every request frame bumps
    /// `port_round_trips` — the client-side round-trip meter the batching
    /// tests assert on.
    stats: Arc<EngineStats>,
}

impl Pool {
    /// Creates a pool and eagerly opens (and parks) one connection, so an
    /// unreachable endpoint fails at adapter construction, not mid-write.
    pub(crate) fn connect(addr: SocketAddr, stats: Arc<EngineStats>) -> Result<Self> {
        let pool = Self {
            addr,
            idle: Mutex::new(Vec::new()),
            stats,
        };
        let probe = pool.checkout()?;
        pool.check_in(probe);
        Ok(pool)
    }

    fn checkout(&self) -> Result<TcpStream> {
        if let Some(conn) = self.idle.lock().pop() {
            return Ok(conn);
        }
        let conn = TcpStream::connect(self.addr)
            .map_err(|e| wire::transport(&format!("connect to {}", self.addr), e))?;
        let _ = conn.set_nodelay(true);
        Ok(conn)
    }

    fn check_in(&self, conn: TcpStream) {
        let mut idle = self.idle.lock();
        if idle.len() < POOL_KEEP {
            idle.push(conn);
        }
    }

    /// One request/response exchange. The connection is returned to the
    /// pool only after a complete, healthy round trip; any failure drops
    /// it (a half-written frame poisons a connection for reuse).
    pub(crate) fn call(&self, request: &WireWriter) -> Result<Vec<u8>> {
        self.stats.port_round_trips.fetch_add(1, Ordering::Relaxed);
        let mut conn = self.checkout()?;
        let exchange = wire::write_frame(&mut conn, request.as_slice())
            .and_then(|()| wire::read_frame(&mut conn));
        match exchange {
            Ok(Some(body)) => {
                self.check_in(conn);
                Ok(body)
            }
            Ok(None) => Err(Error::Transport(format!(
                "{} closed the connection mid-call",
                self.addr
            ))),
            Err(e) => Err(e),
        }
    }
}

/// A successful response body with the payload's start offset — kept
/// whole (no re-copy) so readers borrow it and block payloads can be
/// wrapped zero-copy.
struct RpcPayload {
    body: Vec<u8>,
    start: usize,
}

impl RpcPayload {
    fn reader(&self) -> WireReader<'_> {
        WireReader::new(&self.body[self.start..])
    }
}

/// A `Result`-returning RPC round trip: encodes, exchanges, unwraps the
/// response envelope.
fn call(pool: &Pool, request: WireWriter) -> Result<RpcPayload> {
    let body = pool.call(&request)?;
    let reader = decode_response(&body)?;
    let start = body.len() - reader.remaining();
    Ok(RpcPayload { body, start })
}

/// Decodes a vectored response: the echoed item count, then one status per
/// item — `OK` followed by a payload read by `read_payload`, or `ERR`
/// followed by the item's encoded [`Error`]. A count mismatch or an
/// unexpected status byte is a framing bug and fails the whole batch.
fn decode_batch_items<T>(
    r: &mut WireReader<'_>,
    expect: usize,
    mut read_payload: impl FnMut(&mut WireReader<'_>) -> Result<T>,
) -> Result<Vec<Result<T>>> {
    let n = r.get_u64()? as usize;
    if n != expect {
        return Err(Error::Transport(format!(
            "batched response answers {n} items, expected {expect}"
        )));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(match r.get_u8()? {
            batch_status::OK => Ok(read_payload(r)?),
            batch_status::ERR => Err(r.get_error()?),
            s => {
                return Err(Error::Transport(format!(
                    "unexpected batch status byte {s}"
                )))
            }
        });
    }
    Ok(out)
}

/// Decodes one round of a batched block fetch. Returns the answered items
/// as `(slot, Ok((offset, len)) | Err)` — payload *extents* into `body`,
/// so the caller can wrap the body in [`Bytes`] once and slice zero-copy —
/// plus the deferred items to re-request.
#[allow(clippy::type_complexity)]
fn decode_get_many(
    body: &[u8],
    pending: &[(usize, BlockId)],
) -> Result<(Vec<(usize, Result<(usize, usize)>)>, Vec<(usize, BlockId)>)> {
    let mut r = decode_response(body)?;
    let n = r.get_u64()? as usize;
    if n != pending.len() {
        return Err(Error::Transport(format!(
            "batched response answers {n} items, expected {}",
            pending.len()
        )));
    }
    let mut results = Vec::new();
    let mut deferred = Vec::new();
    for &(slot, id) in pending {
        match r.get_u8()? {
            batch_status::OK => {
                let s = r.get_slice()?;
                // `s` borrows from `body`, so its offset within the frame
                // is plain pointer arithmetic on the same allocation.
                let off = s.as_ptr() as usize - body.as_ptr() as usize;
                results.push((slot, Ok((off, s.len()))));
            }
            batch_status::ERR => results.push((slot, Err(r.get_error()?))),
            batch_status::DEFERRED => deferred.push((slot, id)),
            s => {
                return Err(Error::Transport(format!(
                    "unexpected batch status byte {s}"
                )))
            }
        }
    }
    r.finish()?;
    Ok((results, deferred))
}

// --- block store ------------------------------------------------------------

/// One remote block-service endpoint.
struct BlockEndpoint {
    pool: Pool,
}

/// [`BlockStore`] over one or more remote block services.
///
/// The dense provider index space the provider manager allocates in is
/// the concatenation of the endpoints' provider lists, in the order the
/// endpoints were given — so a deployment can host each data provider in
/// its own server process and the unchanged client protocol still
/// addresses them `0..len()`.
pub struct RpcBlockStore {
    endpoints: Vec<BlockEndpoint>,
    /// Dense provider index → (endpoint index, provider index within it).
    route: Vec<(usize, u64)>,
    /// Dense provider index → hosting node.
    nodes: Vec<NodeId>,
    stats: Arc<EngineStats>,
}

impl RpcBlockStore {
    /// Connects to the given block services and builds the dense index
    /// space over them. Fails if any endpoint is unreachable or empty.
    /// `stats` receives the adapter's round-trip/batch accounting
    /// (`port_round_trips`, `batched_items`) — pass the deployment's
    /// [`EngineStats`].
    pub fn connect(addrs: &[SocketAddr], stats: Arc<EngineStats>) -> Result<Self> {
        if addrs.is_empty() {
            return Err(Error::Transport(
                "RpcBlockStore needs at least one endpoint".into(),
            ));
        }
        let mut endpoints = Vec::with_capacity(addrs.len());
        let mut route = Vec::new();
        let mut nodes = Vec::new();
        for (ei, &addr) in addrs.iter().enumerate() {
            let pool = Pool::connect(addr, Arc::clone(&stats))?;
            let mut req = WireWriter::new();
            req.put_u8(block_tag::DESCRIBE);
            let payload = call(&pool, req)?;
            let mut r = payload.reader();
            let n = r.get_u64()?;
            for local in 0..n {
                nodes.push(NodeId::new(r.get_u64()?));
                route.push((ei, local));
            }
            r.finish()?;
            endpoints.push(BlockEndpoint { pool });
        }
        Ok(Self {
            endpoints,
            route,
            nodes,
            stats,
        })
    }

    /// Request targeting one dense provider index, with the endpoint-local
    /// index substituted.
    fn provider_request(&self, tag: u8, provider: usize) -> Option<(&Pool, WireWriter)> {
        let &(ei, local) = self.route.get(provider)?;
        let mut req = WireWriter::new();
        req.put_u8(tag);
        req.put_u64(local);
        Some((&self.endpoints[ei].pool, req))
    }
}

impl BlockStore for RpcBlockStore {
    fn len(&self) -> usize {
        self.route.len()
    }

    fn node(&self, provider: usize) -> NodeId {
        self.nodes[provider]
    }

    fn index_of_node(&self, node: NodeId) -> Option<usize> {
        self.nodes.iter().position(|&n| n == node)
    }

    fn put(&self, provider: usize, id: BlockId, data: Bytes) -> Result<()> {
        let (pool, mut req) = self
            .provider_request(block_tag::PUT, provider)
            .ok_or_else(|| Error::Internal(format!("provider index {provider} out of range")))?;
        req.put_u64(id.raw());
        req.put_slice(&data);
        call(pool, req)?;
        Ok(())
    }

    fn get(&self, provider: usize, id: BlockId) -> Result<Bytes> {
        let (pool, mut req) = self
            .provider_request(block_tag::GET, provider)
            .ok_or_else(|| Error::Internal(format!("provider index {provider} out of range")))?;
        req.put_u64(id.raw());
        let payload = call(pool, req)?;
        // Zero-copy hand-off: wrap the whole response buffer in `Bytes`
        // and slice out the block payload, instead of memcpy-ing it —
        // this is the hot read path.
        let mut r = payload.reader();
        let len = r.get_u64()? as usize;
        if r.remaining() != len {
            return Err(Error::Transport(format!(
                "block payload length {len} disagrees with frame ({} bytes left)",
                r.remaining()
            )));
        }
        let data_start = payload.body.len() - len;
        Ok(Bytes::from(payload.body).slice(data_start..))
    }

    /// Transport failures degrade to `false` (the port reports presence,
    /// not reachability).
    fn contains(&self, provider: usize, id: BlockId) -> bool {
        let Some((pool, mut req)) = self.provider_request(block_tag::CONTAINS, provider) else {
            return false;
        };
        req.put_u64(id.raw());
        call(pool, req)
            .and_then(|payload| payload.reader().get_bool())
            .unwrap_or(false)
    }

    /// Transport loss is an `Err`, distinguishable from `Ok(0)` ("absent")
    /// — the remote outcome of a lost delete is genuinely unknown.
    fn delete(&self, provider: usize, id: BlockId) -> Result<u64> {
        let (pool, mut req) = self
            .provider_request(block_tag::DELETE, provider)
            .ok_or_else(|| Error::Internal(format!("provider index {provider} out of range")))?;
        req.put_u64(id.raw());
        call(pool, req)?.reader().get_u64()
    }

    fn put_many(&self, provider: usize, items: &[(BlockId, Bytes)]) -> Vec<Result<()>> {
        let Some(&(ei, local)) = self.route.get(provider) else {
            let e = Error::Internal(format!("provider index {provider} out of range"));
            return items.iter().map(|_| Err(e.clone())).collect();
        };
        self.stats
            .batched_items
            .fetch_add(items.len() as u64, Ordering::Relaxed);
        let pool = &self.endpoints[ei].pool;
        let mut out: Vec<Result<()>> = Vec::with_capacity(items.len());
        let mut start = 0;
        while start < items.len() {
            // Greedy chunking: as many blocks per frame as fit the batch
            // byte budget (always at least one, mirroring the single-put
            // frame-size envelope).
            let mut end = start + 1;
            let mut bytes = items[start].1.len();
            while end < items.len() && bytes + items[end].1.len() <= wire::BATCH_BYTE_BUDGET {
                bytes += items[end].1.len();
                end += 1;
            }
            let chunk = &items[start..end];
            let mut req = WireWriter::new();
            req.put_u8(block_tag::PUT_MANY);
            req.put_u64(local);
            req.put_u64(chunk.len() as u64);
            for (id, data) in chunk {
                req.put_u64(id.raw());
                req.put_slice(data);
            }
            match call(pool, req).and_then(|payload| {
                let mut r = payload.reader();
                decode_batch_items(&mut r, chunk.len(), |_| Ok(()))
            }) {
                Ok(results) => out.extend(results),
                // The whole chunk's outcome is unknown: every item fails
                // with the transport error (one refused frame must not be
                // mistaken for per-item success).
                Err(e) => out.extend(chunk.iter().map(|_| Err(e.clone()))),
            }
            start = end;
        }
        out
    }

    fn get_many(&self, provider: usize, ids: &[BlockId]) -> Vec<Result<Bytes>> {
        let Some(&(ei, local)) = self.route.get(provider) else {
            let e = Error::Internal(format!("provider index {provider} out of range"));
            return ids.iter().map(|_| Err(e.clone())).collect();
        };
        self.stats
            .batched_items
            .fetch_add(ids.len() as u64, Ordering::Relaxed);
        let pool = &self.endpoints[ei].pool;
        let mut out: Vec<Result<Bytes>> = ids
            .iter()
            .map(|_| Err(Error::Transport(String::new())))
            .collect();
        // The server answers as many payloads as fit the batch budget and
        // defers the tail; loop until nothing is deferred. The server
        // always includes the first requested item, so each round makes
        // progress.
        let mut pending: Vec<(usize, BlockId)> = ids.iter().copied().enumerate().collect();
        while !pending.is_empty() {
            let mut req = WireWriter::new();
            req.put_u8(block_tag::GET_MANY);
            req.put_u64(local);
            req.put_u64(pending.len() as u64);
            for &(_, id) in &pending {
                req.put_u64(id.raw());
            }
            let body = match pool.call(&req) {
                Ok(body) => body,
                Err(e) => {
                    for &(slot, _) in &pending {
                        out[slot] = Err(e.clone());
                    }
                    return out;
                }
            };
            // First pass borrows the body to decode statuses and payload
            // extents; the body is then wrapped in `Bytes` ONCE so every
            // block of the batch is a zero-copy slice of it.
            let decoded = decode_get_many(&body, &pending);
            match decoded {
                Ok((results, deferred)) => {
                    let shared = Bytes::from(body);
                    for (slot, result) in results {
                        out[slot] = result.map(|(off, len)| shared.slice(off..off + len));
                    }
                    if deferred.len() >= pending.len() {
                        // No progress: a server must answer at least one
                        // item per round. Treat as a framing bug.
                        let e = Error::Transport("batched get made no progress".into());
                        for (slot, _) in deferred {
                            out[slot] = Err(e.clone());
                        }
                        return out;
                    }
                    pending = deferred;
                }
                Err(e) => {
                    for &(slot, _) in &pending {
                        out[slot] = Err(e.clone());
                    }
                    return out;
                }
            }
        }
        out
    }

    fn delete_many(&self, provider: usize, ids: &[BlockId]) -> Vec<Result<u64>> {
        let Some(&(ei, local)) = self.route.get(provider) else {
            let e = Error::Internal(format!("provider index {provider} out of range"));
            return ids.iter().map(|_| Err(e.clone())).collect();
        };
        self.stats
            .batched_items
            .fetch_add(ids.len() as u64, Ordering::Relaxed);
        let pool = &self.endpoints[ei].pool;
        let mut req = WireWriter::new();
        req.put_u8(block_tag::DELETE_MANY);
        req.put_u64(local);
        req.put_u64(ids.len() as u64);
        for id in ids {
            req.put_u64(id.raw());
        }
        match call(pool, req).and_then(|payload| {
            let mut r = payload.reader();
            decode_batch_items(&mut r, ids.len(), |r| r.get_u64())
        }) {
            Ok(results) => results,
            Err(e) => ids.iter().map(|_| Err(e.clone())).collect(),
        }
    }

    /// Transport failures degrade to `0`.
    fn block_count(&self, provider: usize) -> usize {
        let Some((pool, req)) = self.provider_request(block_tag::BLOCK_COUNT, provider) else {
            return 0;
        };
        call(pool, req)
            .and_then(|payload| payload.reader().get_u64())
            .unwrap_or(0) as usize
    }

    /// Transport failures degrade to `0`.
    fn bytes_stored(&self, provider: usize) -> u64 {
        let Some((pool, req)) = self.provider_request(block_tag::BYTES_STORED, provider) else {
            return 0;
        };
        call(pool, req)
            .and_then(|payload| payload.reader().get_u64())
            .unwrap_or(0)
    }

    /// Transport failures degrade to `(0, 0)`.
    fn op_counts(&self, provider: usize) -> (u64, u64) {
        let Some((pool, req)) = self.provider_request(block_tag::OP_COUNTS, provider) else {
            return (0, 0);
        };
        call(pool, req)
            .and_then(|payload| {
                let mut r = payload.reader();
                Ok((r.get_u64()?, r.get_u64()?))
            })
            .unwrap_or((0, 0))
    }
}

// --- meta store -------------------------------------------------------------

/// [`MetaStore`] over a remote metadata DHT service.
pub struct RpcMetaStore {
    pool: Pool,
    shard_count: usize,
    stats: Arc<EngineStats>,
}

impl RpcMetaStore {
    /// Connects and caches the fixed shard count. `stats` receives the
    /// adapter's round-trip/batch accounting.
    pub fn connect(addr: SocketAddr, stats: Arc<EngineStats>) -> Result<Self> {
        let pool = Pool::connect(addr, Arc::clone(&stats))?;
        let mut req = WireWriter::new();
        req.put_u8(meta_tag::SHARD_COUNT);
        let payload = call(&pool, req)?;
        let shard_count = payload.reader().get_u64()? as usize;
        Ok(Self {
            pool,
            shard_count,
            stats,
        })
    }

    /// Runs one metadata batch frame per `META_BATCH_MAX`-item chunk:
    /// encodes the chunk with `encode`, decodes per-item payloads with
    /// `decode`. A transport failure fails that chunk's items only.
    fn meta_batched<I, T>(
        &self,
        tag: u8,
        items: &[I],
        mut encode: impl FnMut(&mut WireWriter, &I),
        mut decode: impl FnMut(&mut WireReader<'_>) -> Result<T>,
    ) -> Vec<Result<T>> {
        self.stats
            .batched_items
            .fetch_add(items.len() as u64, Ordering::Relaxed);
        let mut out = Vec::with_capacity(items.len());
        for chunk in items.chunks(META_BATCH_MAX) {
            let mut req = WireWriter::new();
            req.put_u8(tag);
            req.put_u64(chunk.len() as u64);
            for item in chunk {
                encode(&mut req, item);
            }
            match call(&self.pool, req).and_then(|payload| {
                let mut r = payload.reader();
                decode_batch_items(&mut r, chunk.len(), &mut decode)
            }) {
                Ok(results) => out.extend(results),
                Err(e) => out.extend(chunk.iter().map(|_| Err(e.clone()))),
            }
        }
        out
    }
}

impl MetaStore for RpcMetaStore {
    fn put(&self, key: NodeKey, node: TreeNode) -> Result<()> {
        let mut req = WireWriter::new();
        req.put_u8(meta_tag::PUT);
        wire::put_node_key(&mut req, &key);
        wire::put_tree_node(&mut req, &node);
        call(&self.pool, req)?;
        Ok(())
    }

    fn get(&self, key: &NodeKey) -> Result<TreeNode> {
        let mut req = WireWriter::new();
        req.put_u8(meta_tag::GET);
        wire::put_node_key(&mut req, key);
        let payload = call(&self.pool, req)?;
        let mut r = payload.reader();
        let node = wire::get_tree_node(&mut r)?;
        r.finish()?;
        Ok(node)
    }

    /// Transport failures degrade to `false` (nothing deleted).
    fn delete(&self, key: &NodeKey) -> bool {
        let mut req = WireWriter::new();
        req.put_u8(meta_tag::DELETE);
        wire::put_node_key(&mut req, key);
        call(&self.pool, req)
            .and_then(|payload| payload.reader().get_bool())
            .unwrap_or(false)
    }

    /// One frame per batch: how a writer publishes a whole tree level in a
    /// single round trip. Per-item failures (e.g. a metadata conflict on
    /// one node) come back as that item's own error.
    fn put_many(&self, items: &[(NodeKey, TreeNode)]) -> Vec<Result<()>> {
        self.meta_batched(
            meta_tag::PUT_MANY,
            items,
            |w, (key, node)| {
                wire::put_node_key(w, key);
                wire::put_tree_node(w, node);
            },
            |_| Ok(()),
        )
    }

    /// One frame per batch: a read descent fetches each tree level in a
    /// single round trip.
    fn get_many(&self, keys: &[NodeKey]) -> Vec<Result<TreeNode>> {
        self.meta_batched(
            meta_tag::GET_MANY,
            keys,
            wire::put_node_key,
            wire::get_tree_node,
        )
    }

    /// One frame per batch: GC releases a whole cascade wave per round
    /// trip. Per item, transport loss is an `Err` — unlike the single
    /// [`Self::delete`], the batched form can report "outcome unknown".
    fn delete_many(&self, keys: &[NodeKey]) -> Vec<Result<bool>> {
        self.meta_batched(meta_tag::DELETE_MANY, keys, wire::put_node_key, |r| {
            r.get_bool()
        })
    }

    fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Transport failures degrade to `0`.
    fn node_count(&self) -> usize {
        let mut req = WireWriter::new();
        req.put_u8(meta_tag::NODE_COUNT);
        call(&self.pool, req)
            .and_then(|payload| payload.reader().get_u64())
            .unwrap_or(0) as usize
    }

    /// Transport failures degrade to an empty vector.
    fn shard_stats(&self) -> Vec<(usize, u64, u64)> {
        let mut req = WireWriter::new();
        req.put_u8(meta_tag::SHARD_STATS);
        call(&self.pool, req)
            .and_then(|payload| {
                let mut r = payload.reader();
                let n = r.get_u64()? as usize;
                let mut out = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    out.push((r.get_u64()? as usize, r.get_u64()?, r.get_u64()?));
                }
                r.finish()?;
                Ok(out)
            })
            .unwrap_or_default()
    }

    /// Best-effort over the wire (a crash-injection hook; transport
    /// failures are ignored).
    fn crash_shard(&self, shard: usize) {
        let mut req = WireWriter::new();
        req.put_u8(meta_tag::CRASH_SHARD);
        req.put_u64(shard as u64);
        let _ = call(&self.pool, req);
    }
}

// --- version service --------------------------------------------------------

/// [`VersionService`] over a remote version manager.
pub struct RpcVersionService {
    pool: Pool,
    block_size: u64,
}

impl RpcVersionService {
    /// Connects and caches the fixed block size. `stats` receives the
    /// adapter's round-trip accounting.
    pub fn connect(addr: SocketAddr, stats: Arc<EngineStats>) -> Result<Self> {
        let pool = Pool::connect(addr, stats)?;
        let mut req = WireWriter::new();
        req.put_u8(version_tag::BLOCK_SIZE);
        let payload = call(&pool, req)?;
        let block_size = payload.reader().get_u64()?;
        Ok(Self { pool, block_size })
    }

    fn blob_request(tag: u8, blob: BlobId) -> WireWriter {
        let mut req = WireWriter::new();
        req.put_u8(tag);
        req.put_u64(blob.raw());
        req
    }
}

impl VersionService for RpcVersionService {
    fn block_size(&self) -> u64 {
        self.block_size
    }

    /// # Panics
    /// Panics if the version manager is unreachable — the port has no
    /// error channel here, and inventing a blob id locally would corrupt
    /// the deployment.
    fn create_blob(&self) -> BlobId {
        let mut req = WireWriter::new();
        req.put_u8(version_tag::CREATE_BLOB);
        let payload = call(&self.pool, req).expect("version manager unreachable in create_blob");
        BlobId::new(
            payload
                .reader()
                .get_u64()
                .expect("malformed create_blob response"),
        )
    }

    fn branch(&self, parent: BlobId, at: Version) -> Result<BlobId> {
        let mut req = Self::blob_request(version_tag::BRANCH, parent);
        req.put_u64(at.raw());
        let payload = call(&self.pool, req)?;
        Ok(BlobId::new(payload.reader().get_u64()?))
    }

    fn assign(&self, blob: BlobId, intent: WriteIntent) -> Result<WriteTicket> {
        let mut req = Self::blob_request(version_tag::ASSIGN, blob);
        wire::put_write_intent(&mut req, intent);
        let payload = call(&self.pool, req)?;
        let mut r = payload.reader();
        let ticket = wire::get_write_ticket(&mut r)?;
        r.finish()?;
        Ok(ticket)
    }

    fn commit(&self, blob: BlobId, version: Version) -> Result<()> {
        let mut req = Self::blob_request(version_tag::COMMIT, blob);
        req.put_u64(version.raw());
        call(&self.pool, req)?;
        Ok(())
    }

    fn latest(&self, blob: BlobId) -> Result<(Version, u64)> {
        let req = Self::blob_request(version_tag::LATEST, blob);
        let payload = call(&self.pool, req)?;
        let mut r = payload.reader();
        let out = (Version::new(r.get_u64()?), r.get_u64()?);
        r.finish()?;
        Ok(out)
    }

    fn snapshot_info(&self, blob: BlobId, version: Version) -> Result<SnapshotInfo> {
        let mut req = Self::blob_request(version_tag::SNAPSHOT_INFO, blob);
        req.put_u64(version.raw());
        let payload = call(&self.pool, req)?;
        let mut r = payload.reader();
        let info = wire::get_snapshot_info(&mut r)?;
        r.finish()?;
        Ok(info)
    }

    fn chain(&self, blob: BlobId) -> Result<LogChain> {
        let req = Self::blob_request(version_tag::CHAIN, blob);
        let payload = call(&self.pool, req)?;
        let mut r = payload.reader();
        let chain = wire::get_log_chain(&mut r)?;
        r.finish()?;
        Ok(chain)
    }

    fn wait_revealed(&self, blob: BlobId, version: Version, timeout: Duration) -> Result<()> {
        let mut req = Self::blob_request(version_tag::WAIT_REVEALED, blob);
        req.put_u64(version.raw());
        wire::put_duration(&mut req, timeout);
        // The server enforces the timeout and answers with Ok or
        // Error::Timeout; this call simply blocks on the response.
        call(&self.pool, req)?;
        Ok(())
    }

    fn pending_versions(&self, blob: BlobId) -> Result<Vec<Version>> {
        let req = Self::blob_request(version_tag::PENDING_VERSIONS, blob);
        let payload = call(&self.pool, req)?;
        let mut r = payload.reader();
        let versions = wire::get_versions(&mut r)?;
        r.finish()?;
        Ok(versions)
    }

    fn delete_blob(&self, blob: BlobId) -> Result<Vec<NodeKey>> {
        let req = Self::blob_request(version_tag::DELETE_BLOB, blob);
        let payload = call(&self.pool, req)?;
        let mut r = payload.reader();
        let roots = wire::get_node_keys(&mut r)?;
        r.finish()?;
        Ok(roots)
    }

    fn collect_before(&self, blob: BlobId, keep_from: Version) -> Result<Vec<NodeKey>> {
        let mut req = Self::blob_request(version_tag::COLLECT_BEFORE, blob);
        req.put_u64(keep_from.raw());
        let payload = call(&self.pool, req)?;
        let mut r = payload.reader();
        let roots = wire::get_node_keys(&mut r)?;
        r.finish()?;
        Ok(roots)
    }
}
