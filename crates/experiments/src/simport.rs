//! Simnet-backed adapters for the service ports: the figure drivers run the
//! **real** client protocol (`blobseer_core::client`) while every trait call
//! is charged against the discrete-event cost model of §V.
//!
//! The seed's microbenchmark worlds re-implemented the write protocol as
//! bespoke event-handler glue; any drift between that glue and the live
//! engine silently invalidated the figures. Here the same
//! [`BlockStore`]/[`MetaStore`]/[`VersionService`] calls the in-memory
//! deployment makes are routed through decorators that:
//!
//! * really store the data/metadata (wrapping the lock-striped in-memory
//!   adapters, at a small *real* block size), and
//! * advance a simulated clock in a shared [`SimFabric`] — simnet flows for
//!   the bulk transfers, [`Disk`] FIFOs for provider disks, [`FifoServer`]s
//!   for the version manager and the metadata providers — **as if** every
//!   block were the paper's 64 MB.
//!
//! The cost arithmetic matches the seed's BSFS world step by step (client
//! overhead + provider-manager RPC, flow + disk absorption + provider
//! service, serialized version assignment, parallel tree-node puts issued
//! at the metadata-phase start, commit round-trip), so the reproduced
//! figures keep their calibrated absolute levels while the protocol
//! decisions (placement, segment-tree shape, version bookkeeping) now come
//! from the genuine client code path.
//!
//! The fabric models one synchronous client driving the deployment — the
//! single-writer scenarios of Fig. 3. Concurrent-client figures (4–6) keep
//! their event-kernel worlds, where flow bandwidth sharing needs true
//! event interleaving.

use crate::constants::Constants;
use blobseer_core::block_store::ProviderSet;
use blobseer_core::dht::MetaDht;
use blobseer_core::meta::key::NodeKey;
use blobseer_core::meta::log::LogChain;
use blobseer_core::meta::node::TreeNode;
use blobseer_core::ports::{BlockStore, MetaStore, VersionService};
use blobseer_core::provider_manager::ProviderManager;
use blobseer_core::{
    BlobSeer, EnginePorts, EngineStats, SnapshotInfo, VersionManager, WriteIntent, WriteTicket,
};
use blobseer_types::config::PlacementPolicy;
use blobseer_types::{BlobId, BlobSeerConfig, BlockId, NodeId, Result, Version};
use bytes::Bytes;
use parking_lot::Mutex;
use simnet::{Disk, FifoServer, FlowNet, NicSpec, SimTime};
use std::sync::Arc;
use std::time::Duration;

/// The shared discrete-event state all simnet-backed adapters charge into.
pub struct SimFabric {
    c: Constants,
    clock: SimTime,
    net: FlowNet<()>,
    write_disks: Vec<Disk>,
    read_disks: Vec<Disk>,
    /// The version manager's RPC queue — the protocol's serialization point.
    central: FifoServer,
    /// The metadata providers' RPC queues.
    meta: Vec<FifoServer>,
    meta_rr: usize,
    /// Instant the current metadata phase began: tree-node puts are issued
    /// in parallel from here (§III-D's parallel metadata phase), even
    /// though the synchronous client publishes them one call at a time.
    meta_phase_start: SimTime,
    /// Bytes each block is *modeled* as (the paper's 64 MB), independent of
    /// the small real payloads the driver moves.
    modeled_block_bytes: u64,
    client_node: NodeId,
}

impl SimFabric {
    fn new(c: Constants, n_providers: usize) -> Self {
        let net = FlowNet::new(n_providers + 1, NicSpec::symmetric(c.nic_bps));
        Self {
            clock: SimTime::ZERO,
            net,
            write_disks: (0..n_providers)
                .map(|_| Disk::new(c.disk_write_bps))
                .collect(),
            read_disks: (0..n_providers)
                .map(|_| Disk::new(c.disk_read_bps))
                .collect(),
            central: FifoServer::new(c.vm_assign_svc),
            meta: (0..c.meta_shards.max(1))
                .map(|_| FifoServer::new(c.meta_svc))
                .collect(),
            meta_rr: 0,
            meta_phase_start: SimTime::ZERO,
            modeled_block_bytes: c.block_bytes,
            client_node: NodeId::new(n_providers as u64),
            c,
        }
    }

    /// Current simulated instant.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// The node the modeled client runs on (the non-colocated node past the
    /// providers, §V-D).
    pub fn client_node(&self) -> NodeId {
        self.client_node
    }

    /// Bytes every block put/get is charged as.
    pub fn modeled_block_bytes(&self) -> u64 {
        self.modeled_block_bytes
    }

    /// Data phase of one block (§III-D step 1): client-side overhead, the
    /// provider-manager RPC, then the bulk flow to the provider — whose
    /// disk absorbs the stream from the flow's start — and the provider's
    /// per-block service.
    fn charge_block_put(&mut self, provider: usize) {
        let t0 = self.clock + self.c.bsfs_block_overhead + self.c.rtt();
        self.net.start(
            t0,
            self.client_node,
            NodeId::new(provider as u64),
            self.modeled_block_bytes,
            (),
        );
        let (net_done, _) = self
            .net
            .run_to_next_completion()
            .expect("the just-started flow is active");
        let disk_done = self.write_disks[provider].submit(t0, self.modeled_block_bytes);
        self.clock = net_done.max(disk_done) + self.c.provider_svc;
    }

    /// A block fetch: request round-trip, disk read queued behind earlier
    /// reads on that provider, bulk flow back to the client.
    fn charge_block_get(&mut self, provider: usize) {
        let t0 = self.clock + self.c.bsfs_read_overhead + self.c.rtt();
        let disk_done = self.read_disks[provider].submit(t0, self.modeled_block_bytes);
        self.net.start(
            disk_done,
            NodeId::new(provider as u64),
            self.client_node,
            self.modeled_block_bytes,
            (),
        );
        let (net_done, _) = self
            .net
            .run_to_next_completion()
            .expect("the just-started flow is active");
        self.clock = net_done;
    }

    /// Version assignment (§III-A.4, the only serialized step): a queued
    /// RPC to the version manager. Also opens the metadata phase.
    fn charge_assign(&mut self) {
        self.clock = self
            .central
            .submit_with(self.clock + self.c.latency, self.c.vm_assign_svc)
            + self.c.latency;
        self.meta_phase_start = self.clock;
    }

    /// One tree-node put, issued (with all its siblings) at the metadata
    /// phase's start and spread round-robin over the metadata providers —
    /// the parallel metadata phase of §III-D.
    fn charge_meta_put(&mut self) {
        let shard = self.meta_rr % self.meta.len();
        self.meta_rr += 1;
        let done = self.meta[shard].submit(self.meta_phase_start + self.c.latency) + self.c.latency;
        if done > self.clock {
            self.clock = done;
        }
    }

    /// One tree-node get during a root-to-leaf descent: hops are
    /// sequential (each child reference is only known after its parent
    /// arrives).
    fn charge_meta_get(&mut self) {
        let shard = self.meta_rr % self.meta.len();
        self.meta_rr += 1;
        self.clock = self.meta[shard].submit(self.clock + self.c.latency) + self.c.latency;
    }

    /// Commit notification to the version manager.
    fn charge_commit(&mut self) {
        self.clock += self.c.rtt();
    }
}

/// [`BlockStore`] adapter: stores real (small) blocks in the wrapped
/// in-memory providers while charging each put/get as a modeled 64 MB
/// transfer.
pub struct SimBlockStore {
    inner: ProviderSet,
    fabric: Arc<Mutex<SimFabric>>,
}

impl BlockStore for SimBlockStore {
    fn len(&self) -> usize {
        BlockStore::len(&self.inner)
    }
    fn node(&self, provider: usize) -> NodeId {
        BlockStore::node(&self.inner, provider)
    }
    fn index_of_node(&self, node: NodeId) -> Option<usize> {
        BlockStore::index_of_node(&self.inner, node)
    }
    fn put(&self, provider: usize, id: BlockId, data: Bytes) -> Result<()> {
        self.fabric.lock().charge_block_put(provider);
        BlockStore::put(&self.inner, provider, id, data)
    }
    fn get(&self, provider: usize, id: BlockId) -> Result<Bytes> {
        self.fabric.lock().charge_block_get(provider);
        BlockStore::get(&self.inner, provider, id)
    }
    fn contains(&self, provider: usize, id: BlockId) -> bool {
        BlockStore::contains(&self.inner, provider, id)
    }
    fn delete(&self, provider: usize, id: BlockId) -> u64 {
        BlockStore::delete(&self.inner, provider, id)
    }
    fn block_count(&self, provider: usize) -> usize {
        BlockStore::block_count(&self.inner, provider)
    }
    fn bytes_stored(&self, provider: usize) -> u64 {
        BlockStore::bytes_stored(&self.inner, provider)
    }
    fn op_counts(&self, provider: usize) -> (u64, u64) {
        BlockStore::op_counts(&self.inner, provider)
    }
}

/// [`MetaStore`] adapter: real tree nodes into the wrapped DHT, with puts
/// charged as the parallel metadata phase and gets as sequential descent
/// hops.
pub struct SimMetaStore {
    inner: MetaDht,
    fabric: Arc<Mutex<SimFabric>>,
}

impl MetaStore for SimMetaStore {
    fn put(&self, key: NodeKey, node: TreeNode) -> Result<()> {
        self.fabric.lock().charge_meta_put();
        MetaStore::put(&self.inner, key, node)
    }
    fn get(&self, key: &NodeKey) -> Result<TreeNode> {
        self.fabric.lock().charge_meta_get();
        MetaStore::get(&self.inner, key)
    }
    fn delete(&self, key: &NodeKey) -> bool {
        MetaStore::delete(&self.inner, key)
    }
    fn shard_count(&self) -> usize {
        MetaStore::shard_count(&self.inner)
    }
    fn node_count(&self) -> usize {
        MetaStore::node_count(&self.inner)
    }
    fn shard_stats(&self) -> Vec<(usize, u64, u64)> {
        MetaStore::shard_stats(&self.inner)
    }
    fn crash_shard(&self, shard: usize) {
        MetaStore::crash_shard(&self.inner, shard)
    }
}

/// [`VersionService`] adapter: the real version manager, with assignment
/// charged through the central FIFO queue and commits as a round-trip.
pub struct SimVersionService {
    inner: VersionManager,
    fabric: Arc<Mutex<SimFabric>>,
}

impl VersionService for SimVersionService {
    fn block_size(&self) -> u64 {
        self.inner.block_size()
    }
    fn create_blob(&self) -> BlobId {
        self.inner.create_blob()
    }
    fn branch(&self, parent: BlobId, at: Version) -> Result<BlobId> {
        self.inner.branch(parent, at)
    }
    fn assign(&self, blob: BlobId, intent: WriteIntent) -> Result<WriteTicket> {
        let ticket = self.inner.assign(blob, intent)?;
        self.fabric.lock().charge_assign();
        Ok(ticket)
    }
    fn commit(&self, blob: BlobId, version: Version) -> Result<()> {
        self.inner.commit(blob, version)?;
        self.fabric.lock().charge_commit();
        Ok(())
    }
    fn latest(&self, blob: BlobId) -> Result<(Version, u64)> {
        self.inner.latest(blob)
    }
    fn snapshot_info(&self, blob: BlobId, version: Version) -> Result<SnapshotInfo> {
        self.inner.snapshot_info(blob, version)
    }
    fn chain(&self, blob: BlobId) -> Result<LogChain> {
        self.inner.chain(blob)
    }
    fn wait_revealed(&self, blob: BlobId, version: Version, timeout: Duration) -> Result<()> {
        self.inner.wait_revealed(blob, version, timeout)
    }
    fn pending_versions(&self, blob: BlobId) -> Result<Vec<Version>> {
        self.inner.pending_versions(blob)
    }
    fn delete_blob(&self, blob: BlobId) -> Result<Vec<NodeKey>> {
        self.inner.delete_blob(blob)
    }
    fn collect_before(&self, blob: BlobId, keep_from: Version) -> Result<Vec<NodeKey>> {
        self.inner.collect_before(blob, keep_from)
    }
}

/// A full simnet-backed deployment: the real engine wired to the charging
/// adapters, plus a handle on the fabric for reading the simulated clock.
pub struct SimDeployment {
    /// The deployment; obtain clients with `sys.client(..)`.
    pub sys: Arc<BlobSeer>,
    /// The shared cost-model state.
    pub fabric: Arc<Mutex<SimFabric>>,
    /// The real (small) block size the engine runs at.
    pub real_block_size: u64,
}

impl SimDeployment {
    /// A client on the modeled client node.
    pub fn client(&self) -> blobseer_core::BlobClient {
        let node = self.fabric.lock().client_node();
        self.sys.client(node)
    }
}

/// Deploys the real engine over the simnet-backed adapters.
///
/// `real_block_size` is the engine's actual block size — keep it small
/// (kilobytes) so GB-scale modeled files stay cheap to materialize; every
/// block is *charged* as `c.block_bytes` (64 MB) regardless. `seed` feeds
/// the provider manager's placement stream exactly like the seed's
/// policy-level runs did.
pub fn deploy(
    c: &Constants,
    n_providers: usize,
    policy: PlacementPolicy,
    seed: u64,
    real_block_size: u64,
) -> SimDeployment {
    let fabric = Arc::new(Mutex::new(SimFabric::new(c.clone(), n_providers)));
    let cfg = BlobSeerConfig {
        block_size: real_block_size,
        replication: 1,
        placement: policy,
        metadata_providers: c.meta_shards.max(1),
        metadata_replication: 1,
        ..BlobSeerConfig::small_for_tests()
    };
    let stats = Arc::new(EngineStats::new());
    let ports = EnginePorts {
        providers: Arc::new(SimBlockStore {
            inner: ProviderSet::new(n_providers, |i| NodeId::new(i as u64)),
            fabric: Arc::clone(&fabric),
        }),
        dht: Arc::new(SimMetaStore {
            inner: MetaDht::new(cfg.metadata_providers, cfg.metadata_replication),
            fabric: Arc::clone(&fabric),
        }),
        vm: Arc::new(SimVersionService {
            inner: VersionManager::new(real_block_size, Arc::clone(&stats)),
            fabric: Arc::clone(&fabric),
        }),
        pm: Arc::new(ProviderManager::new(n_providers, policy, seed)),
        stats,
    };
    SimDeployment {
        sys: BlobSeer::deploy_ports(cfg, ports),
        fabric,
        real_block_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::SimDuration;

    #[test]
    fn appends_store_real_data_and_advance_the_clock() {
        let c = Constants::default();
        let dep = deploy(&c, 8, PlacementPolicy::RoundRobin, 1, 1024);
        let client = dep.client();
        let blob = client.create();
        let payload = vec![7u8; 1024];
        for _ in 0..4 {
            client.append(blob, &payload).unwrap();
        }
        // Real engine state: 4 blocks, readable content, proper versions.
        assert_eq!(client.latest(blob).unwrap(), (Version::new(4), 4096));
        let data = client.read(blob, None, 0, 4096).unwrap();
        assert!(data.iter().all(|&b| b == 7));
        assert_eq!(dep.sys.providers().total_block_count(), 4);
        // Simulated time: at least 4 modeled 64 MB transfers at NIC rate.
        let end = dep.fabric.lock().now();
        let floor = 4.0 * c.block_bytes as f64 / c.nic_bps;
        assert!(
            end.as_secs_f64() > floor,
            "clock {end} must exceed the pure-transfer floor {floor:.2}s"
        );
    }

    #[test]
    fn reads_charge_the_read_path() {
        let c = Constants::default();
        let dep = deploy(&c, 4, PlacementPolicy::RoundRobin, 2, 512);
        let client = dep.client();
        let blob = client.create();
        client.append(blob, &vec![1u8; 512]).unwrap();
        let after_write = dep.fabric.lock().now();
        client.read(blob, None, 0, 512).unwrap();
        let after_read = dep.fabric.lock().now();
        assert!(
            (after_read - after_write) > SimDuration::from_millis(500),
            "a modeled 64 MB read costs real simulated time"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let c = Constants::default();
        let run = |seed| {
            let dep = deploy(&c, 16, PlacementPolicy::Random, seed, 256);
            let client = dep.client();
            let blob = client.create();
            for _ in 0..8 {
                client.append(blob, &vec![0u8; 256]).unwrap();
            }
            let t = dep.fabric.lock().now();
            (dep.sys.layout_vector(), t)
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9).0, run(10).0, "different placement stream");
    }
}
