//! Flow-level network model with max-min fair bandwidth sharing.
//!
//! A *flow* is a bulk transfer of `bytes` from one node's egress NIC to
//! another node's ingress NIC. All concurrent flows share NIC capacity
//! max-min fairly, computed by progressive filling: repeatedly find the most
//! contended resource, assign its fair share to every unfrozen flow crossing
//! it, remove them, repeat. This captures the contention effects the paper's
//! evaluation hinges on — e.g. N readers whose blocks landed on the same
//! datanode each get `1/N` of that node's egress (Fig. 4).
//!
//! The model assumes a non-blocking switch fabric between NICs, which matches
//! the single-cluster Grid'5000 deployments of §V-A; an optional aggregate
//! backbone capacity can be set to model oversubscription.
//!
//! Integration with the event kernel goes through the [`NetWorld`] trait and
//! the [`start_flow`] helper: whenever the flow set changes, rates are
//! recomputed and a single "next completion" wake-up is scheduled; stale
//! wake-ups are discarded through an epoch counter.

use crate::kernel::{EventId, Scheduler};
use crate::time::{SimDuration, SimTime};
use blobseer_types::NodeId;

/// Identifies a flow within a [`FlowNet`]. Slots are reused after completion.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct FlowId(usize);

/// Per-node NIC capacities in bytes per second.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NicSpec {
    /// Outgoing capacity (bytes/s).
    pub egress_bps: f64,
    /// Incoming capacity (bytes/s).
    pub ingress_bps: f64,
}

impl NicSpec {
    /// A symmetric NIC.
    pub fn symmetric(bps: f64) -> Self {
        assert!(bps > 0.0, "NIC capacity must be positive");
        Self {
            egress_bps: bps,
            ingress_bps: bps,
        }
    }

    /// The paper's measured 1 Gbit/s TCP rate: 117.5 MB/s (§V-A).
    pub fn grid5000() -> Self {
        Self::symmetric(117.5 * 1024.0 * 1024.0)
    }
}

struct FlowState<T> {
    src: usize,
    dst: usize,
    remaining: f64,
    rate: f64,
    token: T,
}

/// The set of active flows plus NIC capacities.
///
/// All mutating operations advance an internal epoch so that completion
/// wake-ups scheduled against an older state can be recognised and dropped.
pub struct FlowNet<T> {
    nics: Vec<NicSpec>,
    backbone_bps: Option<f64>,
    slots: Vec<Option<FlowState<T>>>,
    free: Vec<usize>,
    active: usize,
    last_advance: SimTime,
    epoch: u64,
    flows_started: u64,
    flows_completed: u64,
    bytes_transferred: f64,
    /// The armed completion wake-up, canceled and replaced on every state
    /// change so no stale event ever advances the kernel clock.
    pending_pump: Option<EventId>,
}

/// A flow is considered complete when fewer than this many bytes remain;
/// guards against floating-point residue.
const COMPLETION_EPS: f64 = 1e-3;

impl<T> FlowNet<T> {
    /// A network of `n_nodes` identical NICs.
    pub fn new(n_nodes: usize, nic: NicSpec) -> Self {
        Self::with_nics(vec![nic; n_nodes])
    }

    /// A network with per-node NIC capacities. Node `i` is `NodeId(i)`.
    pub fn with_nics(nics: Vec<NicSpec>) -> Self {
        assert!(!nics.is_empty(), "network needs at least one node");
        Self {
            nics,
            backbone_bps: None,
            slots: Vec::new(),
            free: Vec::new(),
            active: 0,
            last_advance: SimTime::ZERO,
            epoch: 0,
            flows_started: 0,
            flows_completed: 0,
            bytes_transferred: 0.0,
            pending_pump: None,
        }
    }

    /// Caps the aggregate rate of all flows (models an oversubscribed core).
    pub fn set_backbone(&mut self, bps: Option<f64>) {
        if let Some(b) = bps {
            assert!(b > 0.0, "backbone capacity must be positive");
        }
        self.backbone_bps = bps;
        self.recompute();
    }

    /// Number of nodes in the network.
    pub fn node_count(&self) -> usize {
        self.nics.len()
    }

    /// Number of currently active flows.
    pub fn active_flows(&self) -> usize {
        self.active
    }

    /// Total flows started / completed since construction.
    pub fn flow_stats(&self) -> (u64, u64) {
        (self.flows_started, self.flows_completed)
    }

    /// Total bytes moved by completed *and* in-progress flows so far.
    pub fn bytes_transferred(&self) -> f64 {
        self.bytes_transferred
    }

    /// Epoch counter; bumped on every state change.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Starts a flow of `bytes` from `src` to `dst` at time `now`.
    ///
    /// Zero-byte flows are legal and complete at the next pump.
    ///
    /// # Panics
    /// Panics if either node id is out of range or if `now` precedes the last
    /// state change (causality).
    pub fn start(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        token: T,
    ) -> FlowId {
        let (s, d) = (src.raw() as usize, dst.raw() as usize);
        assert!(s < self.nics.len(), "unknown src node {src}");
        assert!(d < self.nics.len(), "unknown dst node {dst}");
        self.advance(now);
        let state = FlowState {
            src: s,
            dst: d,
            remaining: bytes as f64,
            rate: 0.0,
            token,
        };
        let id = match self.free.pop() {
            Some(slot) => {
                self.slots[slot] = Some(state);
                FlowId(slot)
            }
            None => {
                self.slots.push(Some(state));
                FlowId(self.slots.len() - 1)
            }
        };
        self.active += 1;
        self.flows_started += 1;
        self.recompute();
        id
    }

    /// Advances all flows to `now`, decrementing remaining bytes at current
    /// rates. Idempotent for equal `now`.
    pub fn advance(&mut self, now: SimTime) {
        assert!(
            now >= self.last_advance,
            "flow clock went backwards: {now:?} < {:?}",
            self.last_advance
        );
        let dt = (now - self.last_advance).as_secs_f64();
        self.last_advance = now;
        if dt == 0.0 || self.active == 0 {
            return;
        }
        for slot in self.slots.iter_mut().flatten() {
            let moved = (slot.rate * dt).min(slot.remaining);
            slot.remaining -= moved;
            self.bytes_transferred += moved;
        }
    }

    /// Removes and returns the tokens of all flows that have finished
    /// (remaining ≈ 0). Call [`advance`](Self::advance) first.
    pub fn take_completed(&mut self) -> Vec<T> {
        let mut done = Vec::new();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            let finished = slot
                .as_ref()
                .map(|f| f.remaining <= COMPLETION_EPS)
                .unwrap_or(false);
            if finished {
                let f = slot.take().expect("checked above");
                done.push(f.token);
                self.free.push(i);
                self.active -= 1;
                self.flows_completed += 1;
            }
        }
        if !done.is_empty() {
            self.recompute();
        }
        done
    }

    /// The earliest instant at which some active flow completes, given
    /// current rates, or `None` when no flow is active.
    pub fn next_completion(&self) -> Option<SimTime> {
        let mut best: Option<f64> = None;
        for f in self.slots.iter().flatten() {
            if f.remaining <= COMPLETION_EPS {
                return Some(self.last_advance); // already done, pump now
            }
            debug_assert!(f.rate > 0.0, "active flow starved of bandwidth");
            if f.rate <= 0.0 {
                continue;
            }
            let t = f.remaining / f.rate;
            best = Some(match best {
                Some(b) => b.min(t),
                None => t,
            });
        }
        best.map(|secs| self.last_advance + SimDuration::from_secs_f64(secs))
    }

    /// Runs the network forward to the next flow completion *without* the
    /// event kernel: advances the clock to the earliest completion instant
    /// and removes the finished flows. Returns `(instant, tokens)`, or
    /// `None` when no flow is active.
    ///
    /// For strictly sequential simulations that charge one transfer at a
    /// time from synchronous code; concurrent worlds use the kernel pump
    /// ([`start_flow`]) or the [`crate::gate::SimGate`] instead.
    pub fn run_to_next_completion(&mut self) -> Option<(SimTime, Vec<T>)> {
        let at = self.next_completion()?;
        self.advance(at);
        Some((at, self.take_completed()))
    }

    /// Current rate of a flow in bytes/s (0 if completed/unknown).
    pub fn flow_rate(&self, id: FlowId) -> f64 {
        self.slots
            .get(id.0)
            .and_then(|s| s.as_ref())
            .map(|f| f.rate)
            .unwrap_or(0.0)
    }

    /// Recomputes max-min fair rates for all active flows (progressive
    /// filling) and bumps the epoch.
    ///
    /// Resources: each node's egress, each node's ingress, plus the optional
    /// backbone. Every flow crosses `src.egress`, `dst.ingress` (and the
    /// backbone when configured).
    pub fn recompute(&mut self) {
        self.epoch += 1;
        if self.active == 0 {
            return;
        }
        let n = self.nics.len();
        // Resource layout: [0, n) egress, [n, 2n) ingress, [2n] backbone.
        let n_res = 2 * n + 1;
        let mut cap = vec![0.0f64; n_res];
        let mut load = vec![0u32; n_res]; // unfrozen flows per resource
        for (i, nic) in self.nics.iter().enumerate() {
            cap[i] = nic.egress_bps;
            cap[n + i] = nic.ingress_bps;
        }
        cap[2 * n] = self.backbone_bps.unwrap_or(f64::INFINITY);

        let active_ids: Vec<usize> = (0..self.slots.len())
            .filter(|&i| self.slots[i].is_some())
            .collect();
        for &i in &active_ids {
            let f = self.slots[i].as_ref().expect("active");
            load[f.src] += 1;
            load[n + f.dst] += 1;
            load[2 * n] += 1;
        }

        let mut frozen = vec![false; self.slots.len()];
        let mut unfrozen_left = active_ids.len();
        while unfrozen_left > 0 {
            // Most contended resource: minimal fair share cap/load.
            let mut best_share = f64::INFINITY;
            let mut best_res = usize::MAX;
            for r in 0..n_res {
                if load[r] > 0 {
                    let share = cap[r] / load[r] as f64;
                    if share < best_share {
                        best_share = share;
                        best_res = r;
                    }
                }
            }
            debug_assert!(best_res != usize::MAX, "flows left but no loaded resource");
            if best_res == usize::MAX {
                break;
            }
            // Freeze every unfrozen flow crossing that resource at the share.
            for &i in &active_ids {
                if frozen[i] {
                    continue;
                }
                let (src, dst) = {
                    let f = self.slots[i].as_ref().expect("active");
                    (f.src, f.dst)
                };
                let crosses = src == best_res || n + dst == best_res || best_res == 2 * n;
                if !crosses {
                    continue;
                }
                frozen[i] = true;
                unfrozen_left -= 1;
                let f = self.slots[i].as_mut().expect("active");
                f.rate = best_share;
                // Consume capacity on the flow's other resources.
                for r in [src, n + dst, 2 * n] {
                    load[r] -= 1;
                    if r != best_res {
                        cap[r] = (cap[r] - best_share).max(0.0);
                    }
                }
                // The chosen resource's capacity is fully consumed by its
                // frozen flows; zero what remains to keep shares exact.
                cap[best_res] -= best_share;
            }
            cap[best_res] = cap[best_res].max(0.0);
        }
    }
}

/// Worlds that embed a [`FlowNet`] and want kernel-driven completion
/// callbacks.
pub trait NetWorld: Sized + 'static {
    /// Token attached to each flow, handed back on completion.
    type Token: Copy + 'static;

    /// The embedded network.
    fn net_mut(&mut self) -> &mut FlowNet<Self::Token>;

    /// Called by the pump when a flow finishes.
    fn on_flow_complete(&mut self, sched: &mut Scheduler<Self>, token: Self::Token);
}

/// Starts a flow and (re)arms the completion wake-up.
pub fn start_flow<W: NetWorld>(
    world: &mut W,
    sched: &mut Scheduler<W>,
    src: NodeId,
    dst: NodeId,
    bytes: u64,
    token: W::Token,
) -> FlowId {
    let now = sched.now();
    let id = world.net_mut().start(now, src, dst, bytes, token);
    arm_pump(world, sched);
    id
}

/// Schedules the next pump at the earliest completion time, canceling the
/// previously armed wake-up (its completion estimate is stale once rates
/// changed). The epoch tag stays as a second line of defense for callers
/// that mutate the net without going through [`start_flow`].
fn arm_pump<W: NetWorld>(world: &mut W, sched: &mut Scheduler<W>) {
    if let Some(old) = world.net_mut().pending_pump.take() {
        sched.cancel(old);
    }
    let net = world.net_mut();
    let epoch = net.epoch();
    let Some(mut at) = net.next_completion() else {
        return;
    };
    if at < sched.now() {
        at = sched.now();
    }
    let id = sched.schedule_at(at, move |w: &mut W, s| {
        w.net_mut().pending_pump = None;
        if w.net_mut().epoch() != epoch {
            return; // state changed since this wake-up was armed
        }
        pump(w, s);
    });
    world.net_mut().pending_pump = Some(id);
}

/// Advances flows to now, dispatches completions, re-arms the wake-up.
fn pump<W: NetWorld>(world: &mut W, sched: &mut Scheduler<W>) {
    let now = sched.now();
    let completed = {
        let net = world.net_mut();
        net.advance(now);
        net.take_completed()
    };
    for token in completed {
        world.on_flow_complete(sched, token);
    }
    arm_pump(world, sched);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Sim;

    const MB: f64 = 1024.0 * 1024.0;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1.0)
    }

    #[test]
    fn single_flow_gets_full_bandwidth() {
        let mut net: FlowNet<u32> = FlowNet::new(2, NicSpec::symmetric(100.0 * MB));
        net.start(
            SimTime::ZERO,
            NodeId::new(0),
            NodeId::new(1),
            (100.0 * MB) as u64,
            7,
        );
        let done = net.next_completion().expect("one active flow");
        assert!(
            close(done.as_secs_f64(), 1.0, 1e-6),
            "100 MB at 100 MB/s ≈ 1 s, got {done}"
        );
    }

    #[test]
    fn two_flows_into_one_sink_halve() {
        // Two sources send to the same destination: its ingress is the
        // bottleneck, each flow gets half.
        let mut net: FlowNet<u32> = FlowNet::new(3, NicSpec::symmetric(100.0 * MB));
        let a = net.start(
            SimTime::ZERO,
            NodeId::new(0),
            NodeId::new(2),
            (50.0 * MB) as u64,
            0,
        );
        let b = net.start(
            SimTime::ZERO,
            NodeId::new(1),
            NodeId::new(2),
            (50.0 * MB) as u64,
            1,
        );
        assert!(close(net.flow_rate(a), 50.0 * MB, 1e-9));
        assert!(close(net.flow_rate(b), 50.0 * MB, 1e-9));
    }

    #[test]
    fn max_min_is_not_proportional() {
        // Node 0 sends to nodes 1 and 2; node 3 also sends to node 2.
        // Bottlenecks: node 0 egress (2 flows), node 2 ingress (2 flows).
        // Max-min: all three flows get 50 — flow 0→1 is capped by node 0's
        // egress even though node 1's ingress is idle.
        let mut net: FlowNet<u32> = FlowNet::new(4, NicSpec::symmetric(100.0));
        let f01 = net.start(SimTime::ZERO, NodeId::new(0), NodeId::new(1), 1000, 0);
        let f02 = net.start(SimTime::ZERO, NodeId::new(0), NodeId::new(2), 1000, 1);
        let f32_ = net.start(SimTime::ZERO, NodeId::new(3), NodeId::new(2), 1000, 2);
        assert!(
            close(net.flow_rate(f01), 50.0, 1e-9),
            "{}",
            net.flow_rate(f01)
        );
        assert!(close(net.flow_rate(f02), 50.0, 1e-9));
        assert!(close(net.flow_rate(f32_), 50.0, 1e-9));
    }

    #[test]
    fn asymmetric_shares_redistribute() {
        // Nodes 1,2 both send to node 0 (cap 100). Node 1 also sends to
        // node 3. Max-min: flows into 0 get 50 each; node 1's second flow
        // picks up node 1's leftover egress: 100-50 = 50.
        let mut net: FlowNet<u32> = FlowNet::new(4, NicSpec::symmetric(100.0));
        let f10 = net.start(SimTime::ZERO, NodeId::new(1), NodeId::new(0), 1000, 0);
        let f20 = net.start(SimTime::ZERO, NodeId::new(2), NodeId::new(0), 1000, 1);
        let f13 = net.start(SimTime::ZERO, NodeId::new(1), NodeId::new(3), 1000, 2);
        assert!(close(net.flow_rate(f10), 50.0, 1e-9));
        assert!(close(net.flow_rate(f20), 50.0, 1e-9));
        assert!(close(net.flow_rate(f13), 50.0, 1e-9));
    }

    #[test]
    fn freed_bandwidth_speeds_up_survivors() {
        let mut net: FlowNet<u32> = FlowNet::new(3, NicSpec::symmetric(100.0));
        // Both flows sink into node 2: 50 each.
        net.start(SimTime::ZERO, NodeId::new(0), NodeId::new(2), 100, 0);
        let b = net.start(SimTime::ZERO, NodeId::new(1), NodeId::new(2), 1000, 1);
        // After 2 s the first flow (100 B at 50 B/s) completes.
        let t1 = net.next_completion().unwrap();
        assert!(close(t1.as_secs_f64(), 2.0, 1e-6));
        net.advance(t1);
        let done = net.take_completed();
        assert_eq!(done, vec![0]);
        // Survivor now gets the full 100 B/s.
        assert!(close(net.flow_rate(b), 100.0, 1e-9));
        // It had 1000-100=900 left; completes 9 s later.
        let t2 = net.next_completion().unwrap();
        assert!(close((t2 - t1).as_secs_f64(), 9.0, 1e-5));
    }

    #[test]
    fn backbone_caps_aggregate() {
        let mut net: FlowNet<u32> = FlowNet::new(4, NicSpec::symmetric(100.0));
        net.set_backbone(Some(120.0));
        let a = net.start(SimTime::ZERO, NodeId::new(0), NodeId::new(1), 1000, 0);
        let b = net.start(SimTime::ZERO, NodeId::new(2), NodeId::new(3), 1000, 1);
        // Disjoint NIC pairs, but the 120 B/s backbone splits 60/60.
        assert!(close(net.flow_rate(a), 60.0, 1e-9));
        assert!(close(net.flow_rate(b), 60.0, 1e-9));
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut net: FlowNet<u32> = FlowNet::new(2, NicSpec::symmetric(100.0));
        net.start(SimTime::ZERO, NodeId::new(0), NodeId::new(1), 0, 9);
        assert_eq!(net.next_completion(), Some(SimTime::ZERO));
        net.advance(SimTime::ZERO);
        assert_eq!(net.take_completed(), vec![9]);
    }

    #[test]
    fn slot_reuse_keeps_ids_fresh() {
        let mut net: FlowNet<u32> = FlowNet::new(2, NicSpec::symmetric(100.0));
        let a = net.start(SimTime::ZERO, NodeId::new(0), NodeId::new(1), 100, 0);
        let t = net.next_completion().unwrap();
        net.advance(t);
        assert_eq!(net.take_completed(), vec![0]);
        assert_eq!(net.flow_rate(a), 0.0, "completed flow reports zero rate");
        let b = net.start(t, NodeId::new(0), NodeId::new(1), 100, 1);
        assert_eq!(a, b, "slot is recycled");
        assert!(net.flow_rate(b) > 0.0);
        let (started, completed) = net.flow_stats();
        assert_eq!((started, completed), (2, 1));
    }

    #[test]
    fn run_to_next_completion_drains_sequentially() {
        let mut net: FlowNet<u32> = FlowNet::new(2, NicSpec::symmetric(100.0));
        assert!(net.run_to_next_completion().is_none(), "idle net");
        net.start(SimTime::ZERO, NodeId::new(0), NodeId::new(1), 100, 5);
        let (at, done) = net.run_to_next_completion().unwrap();
        assert!(close(at.as_secs_f64(), 1.0, 1e-6));
        assert_eq!(done, vec![5]);
        // A follow-up flow started at the returned instant chains cleanly.
        net.start(at, NodeId::new(0), NodeId::new(1), 200, 6);
        let (at2, done2) = net.run_to_next_completion().unwrap();
        assert!(close((at2 - at).as_secs_f64(), 2.0, 1e-6));
        assert_eq!(done2, vec![6]);
    }

    // --- kernel integration -------------------------------------------------

    struct NetW {
        net: FlowNet<usize>,
        completions: Vec<(usize, SimTime)>,
        chained: bool,
    }

    impl NetWorld for NetW {
        type Token = usize;
        fn net_mut(&mut self) -> &mut FlowNet<usize> {
            &mut self.net
        }
        fn on_flow_complete(&mut self, sched: &mut Scheduler<Self>, token: usize) {
            let now = sched.now();
            self.completions.push((token, now));
            if token == 0 && !self.chained {
                self.chained = true;
                // Start a follow-up flow from within the callback.
                start_flow(self, sched, NodeId::new(0), NodeId::new(1), 100, 99);
            }
        }
    }

    #[test]
    fn pump_dispatches_and_chains() {
        let world = NetW {
            net: FlowNet::new(2, NicSpec::symmetric(100.0)),
            completions: vec![],
            chained: false,
        };
        let mut sim = Sim::new(world);
        // Kick off the first flow from a scheduled event.
        sim.schedule_in(SimDuration::ZERO, |w: &mut NetW, s| {
            start_flow(w, s, NodeId::new(0), NodeId::new(1), 100, 0);
        });
        let end = sim.run_until_idle();
        assert_eq!(sim.world.completions.len(), 2);
        assert_eq!(sim.world.completions[0].0, 0);
        assert_eq!(sim.world.completions[1].0, 99);
        assert!(
            close(end.as_secs_f64(), 2.0, 1e-6),
            "two sequential 1 s transfers: {end}"
        );
    }

    #[test]
    fn concurrent_flows_complete_together_under_sharing() {
        let world = NetW {
            net: FlowNet::new(3, NicSpec::symmetric(100.0)),
            completions: vec![],
            chained: true, // suppress chaining
        };
        let mut sim = Sim::new(world);
        sim.schedule_in(SimDuration::ZERO, |w: &mut NetW, s| {
            start_flow(w, s, NodeId::new(0), NodeId::new(2), 100, 1);
            start_flow(w, s, NodeId::new(1), NodeId::new(2), 100, 2);
        });
        let end = sim.run_until_idle();
        // Both share the sink's 100 B/s: 200 B total takes 2 s.
        assert!(close(end.as_secs_f64(), 2.0, 1e-6), "{end}");
        assert_eq!(sim.world.completions.len(), 2);
    }

    #[test]
    fn determinism_same_seeded_run_twice() {
        let run = || {
            let world = NetW {
                net: FlowNet::new(4, NicSpec::symmetric(117.5)),
                completions: vec![],
                chained: true,
            };
            let mut sim = Sim::new(world);
            sim.schedule_in(SimDuration::ZERO, |w: &mut NetW, s| {
                for i in 0..3u64 {
                    start_flow(
                        w,
                        s,
                        NodeId::new(i),
                        NodeId::new(3),
                        1000 + 7 * i,
                        i as usize,
                    );
                }
            });
            sim.run_until_idle();
            sim.world
                .completions
                .iter()
                .map(|(t, at)| (*t, at.as_nanos()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
