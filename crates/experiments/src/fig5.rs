//! Fig. 5: aggregated throughput of 1→250 clients concurrently appending
//! 64 MB each to the *same* BLOB (§V-F) — the scenario HDFS cannot run at
//! all ("we could not perform the same experiment for HDFS, since it does
//! not implement the append operation").
//!
//! Every appender is a real `BlobClient::append` on its own simulated
//! thread ([`crate::concurrent`]), so the full two-phase protocol runs:
//!
//! 1. **Data phase, fully parallel**: each appender's optimistic block put
//!    streams to the provider the live provider manager allocates
//!    (round-robin — disjoint providers at the paper's scale, which is
//!    what makes the aggregate scale linearly).
//! 2. **Version assignment**: all appenders funnel through the *real*
//!    version manager; the FIFO queue in front of it — the protocol's only
//!    serialization point (§III-A.4) — is where the knee of the curve
//!    comes from, observable per run via the phase breakdown.
//! 3. **Metadata phase, parallel**: each appender publishes the tree nodes
//!    its version materializes (real `TreeStore::publish_write` puts,
//!    including the shared-spine savings) across the 20 metadata
//!    providers, then commits; the version manager reveals snapshots in
//!    order.
//!
//! The §V-F ablation — "the same experiment performed with writes instead
//! of appends leads to very similar results" — runs the same harness with
//! `BlobClient::write` at random block-aligned offsets of a pre-written
//! BLOB ([`OpMode::RandomWrite`]), reachable from the CLI as
//! `fig5 --writes`.

use crate::concurrent::{self, ClientTask};
use crate::constants::Constants;
use crate::report::{Figure, Series};
use crate::topology::Backend;
use blobseer_core::BlobClient;
use blobseer_types::config::PlacementPolicy;
use blobseer_types::NodeId;
use parking_lot::Mutex;
use simnet::SimDuration;

/// Real engine bytes behind each modeled 64 MB block.
const REAL_BLOCK: u64 = 256;

/// Append vs random-offset write mode (§V-F's closing remark).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpMode {
    /// True appends: offsets assigned by the version manager.
    Append,
    /// Block-aligned writes at random offsets within a pre-written BLOB.
    RandomWrite,
}

/// Outcome of one concurrent-writer run.
pub struct RunOutcome {
    /// Aggregated throughput in MB/s (sum of per-client rates, §V-C).
    pub mbps: f64,
    /// Mean simulated wait from data-phase end to version grant — the
    /// serialized step's queueing plus service, straight from the real
    /// protocol's phase boundaries.
    pub mean_assign_wait: SimDuration,
}

/// Simulates N concurrent appenders (or random writers) through the real
/// client protocol.
pub fn simulate(c: &Constants, mode: OpMode, n_clients: usize) -> RunOutcome {
    let providers = Backend::Bsfs.microbench_storage_nodes();
    let n_nodes = providers.max(n_clients);
    let dep = concurrent::deploy(
        c,
        providers,
        n_nodes,
        PlacementPolicy::RoundRobin,
        0xF165,
        REAL_BLOCK,
    );
    let boot = dep.sys.client(NodeId::new(0));
    let blob = boot.create();
    if mode == OpMode::RandomWrite {
        // Pre-write the N-block BLOB the writers will overwrite, uncharged:
        // capacity is then fixed and every metadata path is full depth.
        let payload = vec![0u8; REAL_BLOCK as usize];
        for _ in 0..n_clients {
            boot.append(blob, &payload).unwrap();
        }
    }
    dep.set_charging(true);
    let durations: Mutex<Vec<Option<SimDuration>>> = Mutex::new(vec![None; n_clients]);
    let clients: Vec<ClientTask<'_>> = (0..n_clients)
        .map(|i| {
            let (durations, fabric) = (&durations, &dep.fabric);
            (
                // Writers run on storage machines, offset so appender i and
                // the provider manager's i-th allocation are unrelated.
                NodeId::new(((i + 13) % n_nodes) as u64),
                Box::new(move |cl: BlobClient| {
                    let t0 = fabric.gate().now();
                    let payload = vec![i as u8; REAL_BLOCK as usize];
                    match mode {
                        OpMode::Append => {
                            cl.append(blob, &payload).unwrap();
                        }
                        OpMode::RandomWrite => {
                            // A pseudo-random block of the pre-written BLOB.
                            let b = (i as u64).wrapping_mul(2_654_435_761) % n_clients as u64;
                            cl.write(blob, b * REAL_BLOCK, &payload).unwrap();
                        }
                    }
                    durations.lock()[i] = Some(fabric.gate().now() - t0);
                }) as Box<dyn FnOnce(BlobClient) + Send>,
            )
        })
        .collect();
    dep.run_clients(clients);
    let mbps = concurrent::client_mbps(c.block_bytes, &durations.into_inner())
        .iter()
        .sum();
    let op = match mode {
        OpMode::Append => blobseer_core::ProtocolOp::Append,
        OpMode::RandomWrite => blobseer_core::ProtocolOp::Write,
    };
    RunOutcome {
        mbps,
        mean_assign_wait: dep
            .phases
            .breakdown()
            .mean(op, blobseer_core::ProtocolPhase::VersionAssigned),
    }
}

/// Aggregated throughput in MB/s, following the paper's measurement
/// methodology ("individual throughput is collected and is then averaged",
/// §V-C): the sum of per-client rates.
pub fn aggregated_mbps(c: &Constants, mode: OpMode, n_clients: usize) -> f64 {
    simulate(c, mode, n_clients).mbps
}

/// Reproduces Fig. 5: aggregated append throughput vs client count (BSFS
/// only — HDFS has no append).
pub fn run(c: &Constants, client_counts: &[usize]) -> Figure {
    let mut fig = Figure::new(
        "Fig. 5",
        "Concurrent appends to a shared file: aggregated throughput (BSFS; HDFS unsupported, §V-F)",
        "number of clients",
        "aggregated throughput (MB/s)",
    );
    let mut series = Series::new("BSFS");
    for &n in client_counts {
        series.push(n as f64, aggregated_mbps(c, OpMode::Append, n));
    }
    fig.series.push(series);
    fig
}

/// The §V-F writes-vs-appends ablation as a figure: both modes on the same
/// grid (`fig5 --writes` on the CLI). The curves should nearly coincide —
/// "the same experiment performed with writes instead of appends leads to
/// very similar results".
pub fn run_writes(c: &Constants, client_counts: &[usize]) -> Figure {
    let mut fig = Figure::new(
        "Fig. 5 (writes ablation)",
        "Appends vs block-aligned writes at random offsets (§V-F)",
        "number of clients",
        "aggregated throughput (MB/s)",
    );
    for (label, mode) in [
        ("BSFS appends", OpMode::Append),
        ("BSFS random writes", OpMode::RandomWrite),
    ] {
        let mut series = Series::new(label);
        for &n in client_counts {
            series.push(n as f64, aggregated_mbps(c, mode, n));
        }
        fig.series.push(series);
    }
    fig
}

/// The paper's x grid: 1 → 250 clients.
pub fn paper_counts() -> Vec<usize> {
    vec![1, 25, 50, 75, 100, 125, 150, 175, 200, 225, 250]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_scales_near_linearly() {
        let c = Constants::default();
        let t1 = aggregated_mbps(&c, OpMode::Append, 1);
        let t100 = aggregated_mbps(&c, OpMode::Append, 100);
        let t250 = aggregated_mbps(&c, OpMode::Append, 250);
        assert!(
            (50.0..70.0).contains(&t1),
            "single appender ≈ single writer: {t1:.0}"
        );
        assert!(t100 > t1 * 60.0, "100 clients scale: {t100:.0}");
        assert!(t250 > t100 * 1.5, "still climbing at 250: {t250:.0}");
        // Paper reaches ≈ 9–10 GB/s at 250 clients.
        assert!(
            (7_000.0..14_000.0).contains(&t250),
            "aggregate at 250: {t250:.0}"
        );
        // Sub-linear by then: the version manager's serialization bites.
        assert!(t250 < t1 * 250.0, "VM serialization must bend the curve");
    }

    #[test]
    fn the_knee_comes_from_the_real_version_manager() {
        // The curve bends because the assignment wait grows with N at the
        // real version manager's queue — measured off the live protocol's
        // phase boundaries, not a modeled parameter.
        let c = Constants::default();
        let small = simulate(&c, OpMode::Append, 10);
        let large = simulate(&c, OpMode::Append, 250);
        assert!(
            large.mean_assign_wait > small.mean_assign_wait.saturating_mul(10),
            "assignment wait must grow with concurrency: {} → {}",
            small.mean_assign_wait,
            large.mean_assign_wait
        );
        // And the wait at 250 clients is the right order of magnitude for
        // a 4 ms-service FIFO: hundreds of milliseconds on average.
        assert!(
            large.mean_assign_wait > SimDuration::from_millis(100),
            "250 queued assignments: {}",
            large.mean_assign_wait
        );
    }

    #[test]
    fn random_writes_behave_like_appends() {
        // §V-F: "The same experiment performed with writes instead of
        // appends, leads to very similar results."
        let c = Constants::default();
        for n in [50, 200] {
            let a = aggregated_mbps(&c, OpMode::Append, n);
            let w = aggregated_mbps(&c, OpMode::RandomWrite, n);
            let rel = (a - w).abs() / a;
            assert!(
                rel < 0.15,
                "append {a:.0} vs write {w:.0} at {n} clients ({rel:.2})"
            );
        }
    }

    #[test]
    fn every_append_really_lands_in_the_blob() {
        // Beyond throughput: the concurrent run must leave a correct BLOB
        // behind — N consecutive versions, N distinct block contents.
        let c = Constants::default();
        let providers = Backend::Bsfs.microbench_storage_nodes();
        let dep = concurrent::deploy(
            &c,
            providers,
            providers,
            PlacementPolicy::RoundRobin,
            7,
            REAL_BLOCK,
        );
        let boot = dep.sys.client(NodeId::new(0));
        let blob = boot.create();
        dep.set_charging(true);
        let clients: Vec<ClientTask<'_>> = (0..32u64)
            .map(|i| {
                (
                    NodeId::new(i),
                    Box::new(move |cl: BlobClient| {
                        cl.append(blob, &[i as u8; REAL_BLOCK as usize]).unwrap();
                    }) as Box<dyn FnOnce(BlobClient) + Send>,
                )
            })
            .collect();
        dep.run_clients(clients);
        let (v, size) = boot.latest(blob).unwrap();
        assert_eq!(v.raw(), 32);
        assert_eq!(size, 32 * REAL_BLOCK);
        let data = boot.read(blob, None, 0, size).unwrap();
        let mut seen = std::collections::HashSet::new();
        for chunk in data.chunks(REAL_BLOCK as usize) {
            assert!(chunk.iter().all(|&b| b == chunk[0]), "torn append");
            assert!(seen.insert(chunk[0]), "duplicate append");
        }
        assert_eq!(seen.len(), 32);
    }

    #[test]
    fn deterministic() {
        let c = Constants::default();
        assert_eq!(
            aggregated_mbps(&c, OpMode::Append, 40),
            aggregated_mbps(&c, OpMode::Append, 40)
        );
    }
}
