//! Client-side hot-read cache tier: byte-budgeted LRU decorators over the
//! [`BlockStore`] and [`MetaStore`] ports.
//!
//! BlobSeer's concurrency control never mutates data or metadata in place:
//! a block id is written once, a tree node key `(blob, version, pos)` is
//! published once, and both are immutable from then on (§III-A.4 — the
//! versioning PR of Nicolae et al. spells this out as the property that
//! makes client caches trivially coherent). A cached copy can therefore
//! never go stale; the only cache policy needed is an eviction policy.
//! That is exactly the "many readers of one hot snapshot" workload of
//! Fig. 4: 250 clients re-descending the same segment tree and re-fetching
//! the same revealed blocks.
//!
//! The decorators wrap any adapter (`Arc<dyn …>`), so a deployment opts in
//! per port — `blobseer_rpc::LoopbackCluster::deploy` wires them over the
//! TCP adapters when [`blobseer_types::BlobSeerConfig::read_cache_bytes`]
//! is non-zero, and the figure reproductions keep them off (the paper's
//! curves are cache-cold).
//!
//! Transparency contract: a cached deployment is observably equivalent to
//! an uncached one for every `Result`-carrying operation
//! (`tests/ports_equivalence.rs` holds the decorators to it). Block
//! entries are keyed `(provider, block id)` — strictly finer than block
//! identity — so per-provider semantics (a replica miss that triggers
//! fetch-fallback, per-provider op accounting) survive the decoration.
//! Hits, misses and evictions are counted on
//! [`EngineStats::cache_hits`]/[`EngineStats::cache_misses`]/
//! [`EngineStats::cache_evictions`].

use crate::meta::key::NodeKey;
use crate::meta::node::TreeNode;
use crate::ports::{BlockStore, MetaStore};
use crate::stats::EngineStats;
use blobseer_types::{BlockId, NodeId, Result};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A byte-budgeted LRU map. Not a port itself — the engine behind both
/// decorators. Entries larger than the whole budget are refused (caching
/// them would evict everything for a single-use payload).
struct Lru<K, V> {
    map: HashMap<K, LruEntry<V>>,
    /// Recency index: tick → key, oldest first. Ticks are unique, so the
    /// first entry is always the least recently used.
    order: BTreeMap<u64, K>,
    tick: u64,
    bytes: u64,
    budget: u64,
}

struct LruEntry<V> {
    value: V,
    size: u64,
    tick: u64,
}

impl<K: Eq + Hash + Clone, V: Clone> Lru<K, V> {
    fn new(budget: u64) -> Self {
        Self {
            map: HashMap::new(),
            order: BTreeMap::new(),
            tick: 0,
            bytes: 0,
            budget,
        }
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Looks a key up and marks it most recently used.
    fn get(&mut self, key: &K) -> Option<V> {
        let tick = self.next_tick();
        let entry = self.map.get_mut(key)?;
        self.order.remove(&entry.tick);
        entry.tick = tick;
        self.order.insert(tick, key.clone());
        Some(entry.value.clone())
    }

    /// Inserts (or refreshes) an entry, evicting least-recently-used
    /// entries until the budget holds. Returns how many entries were
    /// evicted. Values are immutable in this engine, so a re-insert under
    /// an existing key only refreshes recency.
    fn insert(&mut self, key: K, value: V, size: u64) -> u64 {
        if size > self.budget {
            return 0;
        }
        if let Some(old) = self.map.remove(&key) {
            self.order.remove(&old.tick);
            self.bytes -= old.size;
        }
        let tick = self.next_tick();
        self.bytes += size;
        self.order.insert(tick, key.clone());
        self.map.insert(key, LruEntry { value, size, tick });
        let mut evicted = 0;
        while self.bytes > self.budget {
            let (&oldest, _) = self.order.iter().next().expect("bytes>0 implies entries"); // lint:allow(no-unwrap): Lru invariant: bytes>0 implies resident entries
            let victim = self.order.remove(&oldest).expect("key just observed"); // lint:allow(no-unwrap): key returned by the iterator one line up
            let entry = self.map.remove(&victim).expect("order and map in sync"); // lint:allow(no-unwrap): Lru invariant: order and map always agree
            self.bytes -= entry.size;
            evicted += 1;
        }
        evicted
    }

    fn remove(&mut self, key: &K) {
        if let Some(entry) = self.map.remove(key) {
            self.order.remove(&entry.tick);
            self.bytes -= entry.size;
        }
    }

    fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
        self.bytes = 0;
    }
}

/// [`BlockStore`] decorator serving repeated block fetches from a
/// byte-budgeted LRU over [`Bytes`] (zero-copy: a hit hands back a
/// refcount bump of the cached buffer).
pub struct CachedBlockStore {
    inner: Arc<dyn BlockStore>,
    lru: Mutex<Lru<(usize, BlockId), Bytes>>,
    stats: Arc<EngineStats>,
}

impl CachedBlockStore {
    /// Wraps `inner` with a cache of at most `budget_bytes` payload bytes.
    /// Hit/miss/eviction counters land on `stats`.
    pub fn new(inner: Arc<dyn BlockStore>, budget_bytes: u64, stats: Arc<EngineStats>) -> Self {
        Self {
            inner,
            lru: Mutex::named(Lru::new(budget_bytes), "cache.blocks.lru"),
            stats,
        }
    }

    fn count(&self, hits: u64, misses: u64, evictions: u64) {
        let add = |c: &std::sync::atomic::AtomicU64, n: u64| {
            if n > 0 {
                c.fetch_add(n, Ordering::Relaxed);
            }
        };
        add(&self.stats.cache_hits, hits);
        add(&self.stats.cache_misses, misses);
        add(&self.stats.cache_evictions, evictions);
    }
}

impl BlockStore for CachedBlockStore {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn node(&self, provider: usize) -> NodeId {
        self.inner.node(provider)
    }

    fn index_of_node(&self, node: NodeId) -> Option<usize> {
        self.inner.index_of_node(node)
    }

    /// Write-through, write-allocate: the stored bytes are the bytes a
    /// reader would fetch (blocks are immutable), and a writer's own
    /// blocks are the hottest read candidates right after the commit.
    fn put(&self, provider: usize, id: BlockId, data: Bytes) -> Result<()> {
        self.inner.put(provider, id, data.clone())?;
        let size = data.len() as u64;
        let evicted = self.lru.lock().insert((provider, id), data, size);
        self.count(0, 0, evicted);
        Ok(())
    }

    fn get(&self, provider: usize, id: BlockId) -> Result<Bytes> {
        if let Some(hit) = self.lru.lock().get(&(provider, id)) {
            self.count(1, 0, 0);
            return Ok(hit);
        }
        let data = self.inner.get(provider, id)?;
        let size = data.len() as u64;
        let evicted = self.lru.lock().insert((provider, id), data.clone(), size);
        self.count(0, 1, evicted);
        Ok(data)
    }

    fn contains(&self, provider: usize, id: BlockId) -> bool {
        self.inner.contains(provider, id)
    }

    fn delete(&self, provider: usize, id: BlockId) -> Result<u64> {
        self.lru.lock().remove(&(provider, id));
        self.inner.delete(provider, id)
    }

    fn put_many(&self, provider: usize, items: &[(BlockId, Bytes)]) -> Vec<Result<()>> {
        let results = self.inner.put_many(provider, items);
        let mut evicted = 0;
        {
            let mut lru = self.lru.lock();
            for ((id, data), result) in items.iter().zip(&results) {
                if result.is_ok() {
                    evicted += lru.insert((provider, *id), data.clone(), data.len() as u64);
                }
            }
        }
        self.count(0, 0, evicted);
        results
    }

    /// The vectored read-path hot spot: answered per item from the cache,
    /// with one inner `get_many` covering exactly the misses.
    fn get_many(&self, provider: usize, ids: &[BlockId]) -> Vec<Result<Bytes>> {
        let mut out: Vec<Option<Result<Bytes>>> = vec![None; ids.len()];
        let mut missed: Vec<(usize, BlockId)> = Vec::new();
        {
            let mut lru = self.lru.lock();
            for (slot, &id) in ids.iter().enumerate() {
                match lru.get(&(provider, id)) {
                    Some(hit) => out[slot] = Some(Ok(hit)),
                    None => missed.push((slot, id)),
                }
            }
        }
        let hits = (ids.len() - missed.len()) as u64;
        let misses = missed.len() as u64;
        let mut evicted = 0;
        if !missed.is_empty() {
            let miss_ids: Vec<BlockId> = missed.iter().map(|&(_, id)| id).collect();
            let fetched = self.inner.get_many(provider, &miss_ids);
            let mut lru = self.lru.lock();
            for (&(slot, id), result) in missed.iter().zip(fetched) {
                if let Ok(data) = &result {
                    evicted += lru.insert((provider, id), data.clone(), data.len() as u64);
                }
                out[slot] = Some(result);
            }
        }
        self.count(hits, misses, evicted);
        out.into_iter()
            .map(|r| r.expect("every slot answered")) // lint:allow(no-unwrap): batched dispatch fills every slot exactly once
            .collect()
    }

    fn delete_many(&self, provider: usize, ids: &[BlockId]) -> Vec<Result<u64>> {
        {
            let mut lru = self.lru.lock();
            for &id in ids {
                lru.remove(&(provider, id));
            }
        }
        self.inner.delete_many(provider, ids)
    }

    fn block_count(&self, provider: usize) -> usize {
        self.inner.block_count(provider)
    }

    fn bytes_stored(&self, provider: usize) -> u64 {
        self.inner.bytes_stored(provider)
    }

    fn op_counts(&self, provider: usize) -> (u64, u64) {
        self.inner.op_counts(provider)
    }

    fn layout_vector(&self) -> Vec<u64> {
        self.inner.layout_vector()
    }
}

/// Approximate in-memory footprint of one cached tree node, for the byte
/// budget. Tree nodes are tens of bytes; exactness does not matter, only
/// that a budget bounds the cache.
fn node_size(node: &TreeNode) -> u64 {
    match node {
        TreeNode::Inner { .. } => 48,
        TreeNode::Leaf(d) => 48 + 8 * d.providers.len() as u64,
        TreeNode::LeafAlias(_) => 32,
    }
}

/// [`MetaStore`] decorator caching segment-tree nodes by [`NodeKey`] —
/// the read descent's per-level `get_many` is its hot path.
pub struct CachedMetaStore {
    inner: Arc<dyn MetaStore>,
    lru: Mutex<Lru<NodeKey, TreeNode>>,
    stats: Arc<EngineStats>,
}

impl CachedMetaStore {
    /// Wraps `inner` with a cache of roughly `budget_bytes` of tree nodes.
    /// Hit/miss/eviction counters land on `stats`.
    pub fn new(inner: Arc<dyn MetaStore>, budget_bytes: u64, stats: Arc<EngineStats>) -> Self {
        Self {
            inner,
            lru: Mutex::named(Lru::new(budget_bytes), "cache.meta.lru"),
            stats,
        }
    }

    fn count(&self, hits: u64, misses: u64, evictions: u64) {
        let add = |c: &std::sync::atomic::AtomicU64, n: u64| {
            if n > 0 {
                c.fetch_add(n, Ordering::Relaxed);
            }
        };
        add(&self.stats.cache_hits, hits);
        add(&self.stats.cache_misses, misses);
        add(&self.stats.cache_evictions, evictions);
    }
}

impl MetaStore for CachedMetaStore {
    /// Write-through, write-allocate (a publish's nodes are descended
    /// moments later by the writer's own readers). Failed puts (e.g.
    /// [`blobseer_types::Error::MetadataConflict`]) cache nothing.
    fn put(&self, key: NodeKey, node: TreeNode) -> Result<()> {
        self.inner.put(key, node.clone())?;
        let evicted = self.lru.lock().insert(key, node.clone(), node_size(&node));
        self.count(0, 0, evicted);
        Ok(())
    }

    fn get(&self, key: &NodeKey) -> Result<TreeNode> {
        if let Some(hit) = self.lru.lock().get(key) {
            self.count(1, 0, 0);
            return Ok(hit);
        }
        let node = self.inner.get(key)?;
        let evicted = self.lru.lock().insert(*key, node.clone(), node_size(&node));
        self.count(0, 1, evicted);
        Ok(node)
    }

    fn delete(&self, key: &NodeKey) -> bool {
        self.lru.lock().remove(key);
        self.inner.delete(key)
    }

    fn put_many(&self, items: &[(NodeKey, TreeNode)]) -> Vec<Result<()>> {
        let results = self.inner.put_many(items);
        let mut evicted = 0;
        {
            let mut lru = self.lru.lock();
            for ((key, node), result) in items.iter().zip(&results) {
                if result.is_ok() {
                    evicted += lru.insert(*key, node.clone(), node_size(node));
                }
            }
        }
        self.count(0, 0, evicted);
        results
    }

    fn get_many(&self, keys: &[NodeKey]) -> Vec<Result<TreeNode>> {
        let mut out: Vec<Option<Result<TreeNode>>> = vec![None; keys.len()];
        let mut missed: Vec<(usize, NodeKey)> = Vec::new();
        {
            let mut lru = self.lru.lock();
            for (slot, key) in keys.iter().enumerate() {
                match lru.get(key) {
                    Some(hit) => out[slot] = Some(Ok(hit)),
                    None => missed.push((slot, *key)),
                }
            }
        }
        let hits = (keys.len() - missed.len()) as u64;
        let misses = missed.len() as u64;
        let mut evicted = 0;
        if !missed.is_empty() {
            let miss_keys: Vec<NodeKey> = missed.iter().map(|&(_, key)| key).collect();
            let fetched = self.inner.get_many(&miss_keys);
            let mut lru = self.lru.lock();
            for (&(slot, key), result) in missed.iter().zip(fetched) {
                if let Ok(node) = &result {
                    evicted += lru.insert(key, node.clone(), node_size(node));
                }
                out[slot] = Some(result);
            }
        }
        self.count(hits, misses, evicted);
        out.into_iter()
            .map(|r| r.expect("every slot answered")) // lint:allow(no-unwrap): batched dispatch fills every slot exactly once
            .collect()
    }

    fn delete_many(&self, keys: &[NodeKey]) -> Vec<Result<bool>> {
        {
            let mut lru = self.lru.lock();
            for key in keys {
                lru.remove(key);
            }
        }
        self.inner.delete_many(keys)
    }

    fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    fn shard_stats(&self) -> Vec<(usize, u64, u64)> {
        self.inner.shard_stats()
    }

    /// The crash hook drops server-side state; cached copies of the lost
    /// shard must not mask it, so the whole cache drops too (keys don't
    /// reveal their shard here) — a crashed deployment then observes the
    /// same errors an uncached one would.
    fn crash_shard(&self, shard: usize) {
        self.lru.lock().clear();
        self.inner.crash_shard(shard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_store::ProviderSet;
    use crate::dht::MetaDht;
    use crate::meta::key::Pos;
    use crate::meta::node::BlockDescriptor;
    use blobseer_types::{BlobId, Version};

    fn payload(n: usize, fill: u8) -> Bytes {
        Bytes::from(vec![fill; n])
    }

    #[test]
    fn lru_evicts_least_recently_used_within_budget() {
        let mut lru: Lru<u64, u64> = Lru::new(30);
        assert_eq!(lru.insert(1, 10, 10), 0);
        assert_eq!(lru.insert(2, 20, 10), 0);
        assert_eq!(lru.insert(3, 30, 10), 0);
        // Touch 1, so 2 is now the coldest.
        assert_eq!(lru.get(&1), Some(10));
        assert_eq!(lru.insert(4, 40, 10), 1, "one eviction to make room");
        assert_eq!(lru.get(&2), None, "the untouched entry was evicted");
        assert_eq!(lru.get(&1), Some(10));
        assert_eq!(lru.get(&3), Some(30));
        assert_eq!(lru.get(&4), Some(40));
    }

    #[test]
    fn lru_refuses_oversized_entries_and_reinserts_refresh() {
        let mut lru: Lru<u64, u64> = Lru::new(10);
        assert_eq!(lru.insert(1, 1, 11), 0, "over budget: not cached");
        assert_eq!(lru.get(&1), None);
        assert_eq!(lru.insert(2, 2, 6), 0);
        // Re-insert of the same key replaces, never double-counts.
        assert_eq!(lru.insert(2, 2, 6), 0);
        assert_eq!(lru.bytes, 6);
    }

    #[test]
    fn cached_blocks_hit_after_miss_and_counters_track() {
        let stats = Arc::new(EngineStats::new());
        let inner = Arc::new(ProviderSet::new(2, |i| NodeId::new(i as u64)));
        let store = CachedBlockStore::new(inner.clone(), 1 << 20, Arc::clone(&stats));
        store.put(0, BlockId::new(1), payload(64, 0xAB)).unwrap();
        // Put is write-allocate: the first read is already a hit.
        assert_eq!(&store.get(0, BlockId::new(1)).unwrap()[..], &[0xAB; 64]);
        let snap = stats.snapshot();
        assert_eq!((snap.cache_hits, snap.cache_misses), (1, 0));
        // An uncached id misses once, then hits.
        inner.put(1, BlockId::new(2), payload(16, 1)).unwrap();
        let ids = [BlockId::new(2), BlockId::new(2)];
        for r in store.get_many(1, &ids) {
            assert_eq!(r.unwrap().len(), 16);
        }
        let snap = stats.snapshot();
        // One batch is resolved against the cache as a unit, so both
        // lookups of the uncached id count as misses …
        assert_eq!((snap.cache_hits, snap.cache_misses), (1, 2));
        // … and the next call hits.
        assert_eq!(store.get(1, BlockId::new(2)).unwrap().len(), 16);
        let snap = stats.snapshot();
        assert_eq!((snap.cache_hits, snap.cache_misses), (2, 2));
    }

    #[test]
    fn cached_block_delete_invalidates() {
        let stats = Arc::new(EngineStats::new());
        let inner = Arc::new(ProviderSet::new(1, |i| NodeId::new(i as u64)));
        let store = CachedBlockStore::new(inner, 1 << 20, Arc::clone(&stats));
        store.put(0, BlockId::new(7), payload(8, 9)).unwrap();
        assert_eq!(store.delete(0, BlockId::new(7)).unwrap(), 8);
        assert!(
            store.get(0, BlockId::new(7)).is_err(),
            "deleted block must not be served from cache"
        );
    }

    #[test]
    fn cached_meta_serves_descent_nodes_and_respects_conflicts() {
        let stats = Arc::new(EngineStats::new());
        let inner = Arc::new(MetaDht::new(4, 1));
        let dht = CachedMetaStore::new(inner, 1 << 16, Arc::clone(&stats));
        let key = NodeKey::new(BlobId::new(1), Version::new(1), Pos::new(0, 1));
        let leaf = TreeNode::Leaf(BlockDescriptor {
            block_id: BlockId::new(42),
            providers: vec![0],
            len: 64,
        });
        dht.put(key, leaf.clone()).unwrap();
        assert_eq!(dht.get(&key).unwrap(), leaf);
        assert!(stats.snapshot().cache_hits >= 1);
        // Immutability still enforced end to end: a conflicting re-put
        // fails on the backend and must not poison the cache.
        assert!(dht.put(key, TreeNode::LeafAlias(None)).is_err());
        assert_eq!(dht.get(&key).unwrap(), leaf);
    }

    #[test]
    fn eviction_counter_moves_under_pressure() {
        let stats = Arc::new(EngineStats::new());
        let inner = Arc::new(ProviderSet::new(1, |i| NodeId::new(i as u64)));
        // Budget of two blocks; storing four evicts two.
        let store = CachedBlockStore::new(inner, 128, Arc::clone(&stats));
        for i in 0..4u64 {
            store.put(0, BlockId::new(i), payload(64, i as u8)).unwrap();
        }
        assert_eq!(stats.snapshot().cache_evictions, 2);
    }
}
