//! The namenode: HDFS's centralized metadata server (§II-B).
//!
//! "A centralized namenode is responsible to maintain both chunk layout and
//! directory structure metadata." Everything the paper contrasts with
//! BlobSeer's decentralization lives here, behind one mutex: the namespace
//! tree, the per-file chunk lists, the single-writer leases, and the
//! placement decisions ("writing locally whenever a write is initiated on a
//! datanode", §V-D; random with pipeline-session affinity otherwise, see
//! DESIGN.md §3.4).

use crate::datanode::ChunkId;
use blobseer_core::placement::Placer;
use blobseer_types::config::PlacementPolicy;
use blobseer_types::{Error, HdfsConfig, Result};
use dfs::DfsPath;
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

/// A writer lease token.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LeaseId(u64);

/// One chunk of a file: id, length, replica datanodes (dense indices).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChunkMeta {
    pub id: ChunkId,
    pub len: u32,
    pub datanodes: Vec<usize>,
}

/// Read-side snapshot of a file's layout.
#[derive(Clone, Debug)]
pub struct FileSnapshot {
    pub chunks: Vec<ChunkMeta>,
    pub len: u64,
}

struct LeaseState {
    id: LeaseId,
    placer: Placer,
}

struct FileMeta {
    chunks: Vec<ChunkMeta>,
    len: u64,
    lease: Option<LeaseState>,
}

enum INode {
    Dir(BTreeSet<String>),
    File(Box<FileMeta>),
}

#[derive(Default)]
struct Inner {
    entries: HashMap<DfsPath, INode>,
    /// Chunks allocated per datanode (the layout vector of Fig. 3(b)).
    loads: Vec<u64>,
}

impl Inner {
    fn dir_children(&mut self, path: &DfsPath) -> Option<&mut BTreeSet<String>> {
        match self.entries.get_mut(path) {
            Some(INode::Dir(ch)) => Some(ch),
            _ => None,
        }
    }
}

/// The centralized metadata server.
pub struct NameNode {
    cfg: HdfsConfig,
    n_datanodes: usize,
    inner: Mutex<Inner>,
    next_chunk: AtomicU64,
    next_lease: AtomicU64,
    placement_seed: AtomicU64,
    ops: AtomicU64,
}

impl NameNode {
    /// A namenode managing `n_datanodes` datanodes.
    pub fn new(cfg: HdfsConfig, n_datanodes: usize) -> Self {
        assert!(n_datanodes > 0, "need at least one datanode");
        assert!(
            cfg.replication <= n_datanodes,
            "replication exceeds datanode count"
        );
        let mut inner = Inner::default();
        inner
            .entries
            .insert(DfsPath::root(), INode::Dir(BTreeSet::new()));
        inner.loads = vec![0; n_datanodes];
        Self {
            cfg,
            n_datanodes,
            inner: Mutex::named(inner, "hdfs.namenode.inner"),
            next_chunk: AtomicU64::new(1),
            next_lease: AtomicU64::new(1),
            placement_seed: AtomicU64::new(0xD1CE),
            ops: AtomicU64::new(0),
        }
    }

    /// Configuration (chunk size, replication, append support).
    pub fn config(&self) -> &HdfsConfig {
        &self.cfg
    }

    /// RPCs served — the centralized-bottleneck metric.
    pub fn op_count(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    fn bump(&self) {
        self.ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Chunks allocated per datanode.
    pub fn layout_vector(&self) -> Vec<u64> {
        self.inner.lock().loads.clone()
    }

    // --- namespace ---------------------------------------------------------

    /// Creates a directory chain.
    pub fn mkdirs(&self, path: &DfsPath) -> Result<()> {
        self.bump();
        let mut inner = self.inner.lock();
        Self::mkdirs_locked(&mut inner, path)
    }

    fn mkdirs_locked(inner: &mut Inner, path: &DfsPath) -> Result<()> {
        let mut cur = DfsPath::root();
        for comp in path.components() {
            let child = cur.join(comp).expect("validated");
            match inner.entries.get(&child) {
                None => {
                    inner
                        .entries
                        .insert(child.clone(), INode::Dir(BTreeSet::new()));
                    inner
                        .dir_children(&cur)
                        .expect("parent exists")
                        .insert(comp.to_string());
                }
                Some(INode::Dir(_)) => {}
                Some(INode::File(_)) => return Err(Error::NotADirectory(child.to_string())),
            }
            cur = child;
        }
        Ok(())
    }

    /// True if the path exists.
    pub fn exists(&self, path: &DfsPath) -> Result<bool> {
        self.bump();
        Ok(self.inner.lock().entries.contains_key(path))
    }

    /// `(is_dir, len)` of an entry.
    pub fn status(&self, path: &DfsPath) -> Result<(bool, u64)> {
        self.bump();
        let inner = self.inner.lock();
        match inner.entries.get(path) {
            None => Err(Error::NotFound(path.to_string())),
            Some(INode::Dir(_)) => Ok((true, 0)),
            Some(INode::File(ref f)) => Ok((false, f.len)),
        }
    }

    /// Children of a directory as `(name, is_dir, len)`.
    pub fn list(&self, path: &DfsPath) -> Result<Vec<(String, bool, u64)>> {
        self.bump();
        let inner = self.inner.lock();
        let names = match inner.entries.get(path) {
            None => return Err(Error::NotFound(path.to_string())),
            Some(INode::File(_)) => return Err(Error::NotADirectory(path.to_string())),
            Some(INode::Dir(ch)) => ch.clone(),
        };
        names
            .into_iter()
            .map(|name| {
                let child = path.join(&name)?;
                match inner.entries.get(&child) {
                    Some(INode::Dir(_)) => Ok((name, true, 0)),
                    Some(INode::File(ref f)) => Ok((name, false, f.len)),
                    None => Err(Error::Internal(format!("dangling child {child}"))),
                }
            })
            .collect()
    }

    /// Deletes a path; returns the chunks to reclaim from datanodes.
    pub fn delete(&self, path: &DfsPath, recursive: bool) -> Result<Vec<ChunkMeta>> {
        self.bump();
        if path.is_root() {
            return Err(Error::InvalidPath("cannot delete the root".into()));
        }
        let mut inner = self.inner.lock();
        match inner.entries.get(path) {
            None => return Err(Error::NotFound(path.to_string())),
            Some(INode::File(ref f)) => {
                if f.lease.is_some() {
                    return Err(Error::LeaseConflict(path.to_string()));
                }
            }
            Some(INode::Dir(ch)) => {
                if !ch.is_empty() && !recursive {
                    return Err(Error::DirectoryNotEmpty(path.to_string()));
                }
            }
        }
        // Collect the subtree.
        let mut chunks = Vec::new();
        let mut stack = vec![path.clone()];
        let mut doomed = Vec::new();
        while let Some(p) = stack.pop() {
            match inner.entries.get(&p) {
                Some(INode::Dir(ch)) => {
                    for name in ch {
                        stack.push(p.join(name).expect("validated"));
                    }
                }
                Some(INode::File(ref f)) => chunks.extend(f.chunks.iter().cloned()),
                None => {}
            }
            doomed.push(p);
        }
        for p in &doomed {
            inner.entries.remove(p);
        }
        let parent = path.parent().expect("non-root");
        if let Some(ch) = inner.dir_children(&parent) {
            ch.remove(path.name());
        }
        for c in &chunks {
            for &dn in &c.datanodes {
                inner.loads[dn] = inner.loads[dn].saturating_sub(1);
            }
        }
        Ok(chunks)
    }

    /// Renames a file or subtree.
    pub fn rename(&self, src: &DfsPath, dst: &DfsPath) -> Result<()> {
        self.bump();
        if src.is_root() {
            return Err(Error::InvalidPath("cannot rename the root".into()));
        }
        if dst.starts_with(src) {
            return Err(Error::InvalidPath(format!("cannot move {src} into itself")));
        }
        let mut inner = self.inner.lock();
        if !inner.entries.contains_key(src) {
            return Err(Error::NotFound(src.to_string()));
        }
        if inner.entries.contains_key(dst) {
            return Err(Error::AlreadyExists(dst.to_string()));
        }
        let dst_parent = dst
            .parent()
            .ok_or_else(|| Error::AlreadyExists("/".into()))?;
        match inner.entries.get(&dst_parent) {
            Some(INode::Dir(_)) => {}
            Some(INode::File(_)) => return Err(Error::NotADirectory(dst_parent.to_string())),
            None => return Err(Error::NotFound(dst_parent.to_string())),
        }
        // Move the subtree by rewriting keys.
        let to_move: Vec<DfsPath> = inner
            .entries
            .keys()
            .filter(|p| p.starts_with(src))
            .cloned()
            .collect();
        for old in to_move {
            let node = inner.entries.remove(&old).expect("listed");
            let suffix = old.as_str().strip_prefix(src.as_str()).expect("prefix");
            let new = DfsPath::parse(&format!("{}{}", dst.as_str(), suffix)).expect("valid");
            inner.entries.insert(new, node);
        }
        let src_parent = src.parent().expect("non-root");
        if let Some(ch) = inner.dir_children(&src_parent) {
            ch.remove(src.name());
        }
        inner
            .dir_children(&dst_parent)
            .expect("checked dir")
            .insert(dst.name().to_string());
        Ok(())
    }

    // --- write path ----------------------------------------------------------

    fn new_lease(&self, client_datanode: Option<usize>) -> LeaseState {
        // Pipeline-session placement state: sticky random for remote
        // clients; purely local-first handled in `add_chunk`.
        let policy = if self.cfg.placement_stickiness == 0 {
            PlacementPolicy::Random
        } else {
            PlacementPolicy::StickyRandom {
                stickiness: self.cfg.placement_stickiness,
            }
        };
        let _ = client_datanode;
        LeaseState {
            id: LeaseId(self.next_lease.fetch_add(1, Ordering::Relaxed)),
            placer: Placer::new(policy, self.placement_seed.fetch_add(1, Ordering::Relaxed)),
        }
    }

    /// Creates a file under a single-writer lease (§II-B: "it allows only
    /// one writer at a time"). Returns the lease and any chunks of an
    /// overwritten file for reclamation.
    pub fn create(
        &self,
        path: &DfsPath,
        overwrite: bool,
        client_datanode: Option<usize>,
    ) -> Result<(LeaseId, Vec<ChunkMeta>)> {
        self.bump();
        if path.is_root() {
            return Err(Error::AlreadyExists("/".into()));
        }
        let mut inner = self.inner.lock();
        let parent = path.parent().expect("non-root");
        Self::mkdirs_locked(&mut inner, &parent)?;
        let old_chunks = match inner.entries.get(path) {
            Some(INode::Dir(_)) => {
                return Err(Error::AlreadyExists(format!("{path} is a directory")))
            }
            Some(INode::File(ref f)) => {
                if f.lease.is_some() {
                    return Err(Error::LeaseConflict(path.to_string()));
                }
                if !overwrite {
                    return Err(Error::AlreadyExists(path.to_string()));
                }
                let old = f.chunks.clone();
                for c in &old {
                    for &dn in &c.datanodes {
                        inner.loads[dn] = inner.loads[dn].saturating_sub(1);
                    }
                }
                old
            }
            None => Vec::new(),
        };
        let lease = self.new_lease(client_datanode);
        let lease_id = lease.id;
        inner.entries.insert(
            path.clone(),
            INode::File(Box::new(FileMeta {
                chunks: Vec::new(),
                len: 0,
                lease: Some(lease),
            })),
        );
        inner
            .dir_children(&parent)
            .expect("created above")
            .insert(path.name().to_string());
        Ok((lease_id, old_chunks))
    }

    /// Acquires an append lease. Hadoop 0.20 refuses (§V-F); later versions
    /// are modeled by `HdfsConfig::append_supported`.
    pub fn append(
        &self,
        path: &DfsPath,
        client_datanode: Option<usize>,
    ) -> Result<(LeaseId, FileSnapshot)> {
        self.bump();
        if !self.cfg.append_supported {
            return Err(Error::Unsupported("append (HDFS 0.20, §V-F)"));
        }
        let mut inner = self.inner.lock();
        match inner.entries.get_mut(path) {
            None => Err(Error::NotFound(path.to_string())),
            Some(INode::Dir(_)) => Err(Error::NotADirectory(path.to_string())),
            Some(INode::File(f)) => {
                if f.lease.is_some() {
                    return Err(Error::LeaseConflict(path.to_string()));
                }
                let lease = self.new_lease(client_datanode);
                let id = lease.id;
                let snap = FileSnapshot {
                    chunks: f.chunks.clone(),
                    len: f.len,
                };
                f.lease = Some(lease);
                Ok((id, snap))
            }
        }
    }

    fn with_leased_file<T>(
        &self,
        path: &DfsPath,
        lease: LeaseId,
        f: impl FnOnce(&mut FileMeta, &mut Vec<u64>) -> T,
    ) -> Result<T> {
        let mut inner = self.inner.lock();
        let Inner { entries, loads } = &mut *inner;
        match entries.get_mut(path) {
            None => Err(Error::NotFound(path.to_string())),
            Some(INode::Dir(_)) => Err(Error::NotADirectory(path.to_string())),
            Some(INode::File(meta)) => match &meta.lease {
                Some(l) if l.id == lease => Ok(f(meta, loads)),
                _ => Err(Error::LeaseConflict(format!("{path}: stale lease"))),
            },
        }
    }

    /// Allocates a new chunk: id + replica targets. The first replica is
    /// the client's own datanode when co-located ("writing locally whenever
    /// a write is initiated on a datanode", §V-D), else per the sticky
    /// random session policy.
    pub fn add_chunk(
        &self,
        path: &DfsPath,
        lease: LeaseId,
        len: u32,
        client_datanode: Option<usize>,
    ) -> Result<(ChunkId, Vec<usize>)> {
        self.bump();
        debug_assert!(len as u64 <= self.cfg.chunk_size);
        let id = ChunkId(self.next_chunk.fetch_add(1, Ordering::Relaxed));
        let replication = self.cfg.replication;
        let n = self.n_datanodes;
        self.with_leased_file(path, lease, move |meta, loads| {
            let mut targets = Vec::with_capacity(replication);
            if let Some(local) = client_datanode {
                debug_assert!(local < n);
                targets.push(local);
            }
            let lease_state = meta.lease.as_mut().expect("checked");
            while targets.len() < replication {
                targets.push(lease_state.placer.pick(loads, &targets));
            }
            for &dn in &targets {
                loads[dn] += 1;
            }
            meta.chunks.push(ChunkMeta {
                id,
                len,
                datanodes: targets.clone(),
            });
            meta.len += len as u64;
            (id, targets)
        })
    }

    /// Extends the (unsealed) final chunk of a file under append.
    /// Returns the chunk to extend on the datanodes.
    pub fn extend_last_chunk(
        &self,
        path: &DfsPath,
        lease: LeaseId,
        added: u32,
    ) -> Result<(ChunkId, Vec<usize>)> {
        self.bump();
        self.with_leased_file(path, lease, |meta, _| {
            let last = meta
                .chunks
                .last_mut()
                .ok_or_else(|| Error::Internal("extend on empty file".into()))?;
            last.len += added;
            meta.len += added as u64;
            Ok((last.id, last.datanodes.clone()))
        })?
    }

    /// Completes the file: releases the lease; data becomes immutable.
    /// Returns the chunk list so the caller can seal replicas.
    pub fn complete(&self, path: &DfsPath, lease: LeaseId) -> Result<Vec<ChunkMeta>> {
        self.bump();
        self.with_leased_file(path, lease, |meta, _| {
            meta.lease = None;
            meta.chunks.clone()
        })
    }

    /// Read-side layout snapshot.
    pub fn file_snapshot(&self, path: &DfsPath) -> Result<FileSnapshot> {
        self.bump();
        let inner = self.inner.lock();
        match inner.entries.get(path) {
            None => Err(Error::NotFound(path.to_string())),
            Some(INode::Dir(_)) => Err(Error::NotADirectory(path.to_string())),
            Some(INode::File(ref f)) => Ok(FileSnapshot {
                chunks: f.chunks.clone(),
                len: f.len,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> DfsPath {
        DfsPath::parse(s).unwrap()
    }

    fn nn() -> NameNode {
        NameNode::new(HdfsConfig::small_for_tests(), 4)
    }

    #[test]
    fn create_write_complete_lifecycle() {
        let nn = nn();
        let (lease, old) = nn.create(&p("/f"), false, None).unwrap();
        assert!(old.is_empty());
        let (c1, dns1) = nn.add_chunk(&p("/f"), lease, 4096, None).unwrap();
        let (c2, _) = nn.add_chunk(&p("/f"), lease, 100, None).unwrap();
        assert_ne!(c1, c2);
        assert_eq!(dns1.len(), 1);
        nn.complete(&p("/f"), lease).unwrap();
        let snap = nn.file_snapshot(&p("/f")).unwrap();
        assert_eq!(snap.len, 4196);
        assert_eq!(snap.chunks.len(), 2);
        assert_eq!(nn.status(&p("/f")).unwrap(), (false, 4196));
    }

    #[test]
    fn single_writer_lease_enforced() {
        let nn = nn();
        let (lease, _) = nn.create(&p("/f"), false, None).unwrap();
        // Second writer (even with overwrite) is locked out while leased.
        assert!(matches!(
            nn.create(&p("/f"), true, None),
            Err(Error::LeaseConflict(_))
        ));
        // Stale lease is rejected after completion.
        nn.complete(&p("/f"), lease).unwrap();
        assert!(matches!(
            nn.add_chunk(&p("/f"), lease, 1, None),
            Err(Error::LeaseConflict(_))
        ));
    }

    #[test]
    fn append_gated_by_config() {
        let nn = nn();
        let (lease, _) = nn.create(&p("/f"), false, None).unwrap();
        nn.add_chunk(&p("/f"), lease, 10, None).unwrap();
        nn.complete(&p("/f"), lease).unwrap();
        assert!(matches!(
            nn.append(&p("/f"), None),
            Err(Error::Unsupported(_))
        ));
        let nn2 = NameNode::new(HdfsConfig::small_for_tests().with_append(true), 4);
        let (lease, _) = nn2.create(&p("/f"), false, None).unwrap();
        nn2.add_chunk(&p("/f"), lease, 10, None).unwrap();
        nn2.complete(&p("/f"), lease).unwrap();
        let (lease2, snap) = nn2.append(&p("/f"), None).unwrap();
        assert_eq!(snap.len, 10);
        let (c, _) = nn2.extend_last_chunk(&p("/f"), lease2, 5).unwrap();
        assert_eq!(c, snap.chunks[0].id);
        nn2.complete(&p("/f"), lease2).unwrap();
        assert_eq!(nn2.status(&p("/f")).unwrap().1, 15);
    }

    #[test]
    fn local_first_placement() {
        let nn = NameNode::new(HdfsConfig::small_for_tests().with_replication(2), 4);
        let (lease, _) = nn.create(&p("/f"), false, Some(2)).unwrap();
        for _ in 0..5 {
            let (_, dns) = nn.add_chunk(&p("/f"), lease, 64, Some(2)).unwrap();
            assert_eq!(dns[0], 2, "first replica is the co-located datanode");
            assert_ne!(dns[1], 2, "second replica is remote");
        }
    }

    #[test]
    fn remote_client_spreads_chunks_randomly() {
        let nn = nn();
        let (lease, _) = nn.create(&p("/f"), false, None).unwrap();
        for _ in 0..64 {
            nn.add_chunk(&p("/f"), lease, 64, None).unwrap();
        }
        let layout = nn.layout_vector();
        assert_eq!(layout.iter().sum::<u64>(), 64);
        assert!(
            layout.iter().filter(|&&l| l > 0).count() >= 2,
            "chunks should hit several datanodes: {layout:?}"
        );
    }

    #[test]
    fn delete_returns_chunks_and_updates_loads() {
        let nn = nn();
        let (lease, _) = nn.create(&p("/d/f"), false, None).unwrap();
        nn.add_chunk(&p("/d/f"), lease, 64, None).unwrap();
        nn.add_chunk(&p("/d/f"), lease, 64, None).unwrap();
        nn.complete(&p("/d/f"), lease).unwrap();
        assert_eq!(nn.layout_vector().iter().sum::<u64>(), 2);
        let chunks = nn.delete(&p("/d"), true).unwrap();
        assert_eq!(chunks.len(), 2);
        assert_eq!(nn.layout_vector().iter().sum::<u64>(), 0);
        assert!(!nn.exists(&p("/d/f")).unwrap());
    }

    #[test]
    fn delete_of_leased_file_refused() {
        let nn = nn();
        let (_lease, _) = nn.create(&p("/f"), false, None).unwrap();
        assert!(matches!(
            nn.delete(&p("/f"), false),
            Err(Error::LeaseConflict(_))
        ));
    }

    #[test]
    fn rename_moves_chunk_metadata() {
        let nn = nn();
        let (lease, _) = nn.create(&p("/a/f"), false, None).unwrap();
        nn.add_chunk(&p("/a/f"), lease, 64, None).unwrap();
        nn.complete(&p("/a/f"), lease).unwrap();
        nn.mkdirs(&p("/b")).unwrap();
        nn.rename(&p("/a"), &p("/b/moved")).unwrap();
        let snap = nn.file_snapshot(&p("/b/moved/f")).unwrap();
        assert_eq!(snap.chunks.len(), 1);
        assert!(!nn.exists(&p("/a")).unwrap());
    }

    #[test]
    fn overwrite_returns_old_chunks() {
        let nn = nn();
        let (lease, _) = nn.create(&p("/f"), false, None).unwrap();
        nn.add_chunk(&p("/f"), lease, 64, None).unwrap();
        nn.complete(&p("/f"), lease).unwrap();
        let (lease2, old) = nn.create(&p("/f"), true, None).unwrap();
        assert_eq!(old.len(), 1, "old chunks handed back for reclamation");
        nn.complete(&p("/f"), lease2).unwrap();
        assert_eq!(nn.status(&p("/f")).unwrap().1, 0);
    }
}
