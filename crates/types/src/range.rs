//! Byte ranges and block arithmetic.
//!
//! BlobSeer addresses data as `(offset, size)` ranges within a BLOB
//! (§III-A.1); the segment tree, the client read/write paths and the caches
//! all manipulate ranges and their projection onto fixed-size blocks. Keeping
//! that arithmetic in one well-tested place avoids a whole class of
//! off-by-one bugs.

use std::fmt;

/// A half-open byte range `[offset, offset + size)` within a BLOB or file.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ByteRange {
    /// First byte covered.
    pub offset: u64,
    /// Number of bytes covered. May be zero (an empty range).
    pub size: u64,
}

impl ByteRange {
    /// Creates a range from offset and size.
    #[inline]
    pub const fn new(offset: u64, size: u64) -> Self {
        Self { offset, size }
    }

    /// The empty range at offset 0.
    pub const EMPTY: ByteRange = ByteRange::new(0, 0);

    /// One byte past the end of the range.
    #[inline]
    pub const fn end(&self) -> u64 {
        self.offset + self.size
    }

    /// True if the range covers no bytes.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// True if the two ranges share at least one byte.
    ///
    /// Empty ranges intersect nothing, including themselves.
    #[inline]
    pub const fn intersects(&self, other: &ByteRange) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.offset < other.end()
            && other.offset < self.end()
    }

    /// The intersection of two ranges, or `None` when disjoint or empty.
    #[inline]
    pub fn intersection(&self, other: &ByteRange) -> Option<ByteRange> {
        if !self.intersects(other) {
            return None;
        }
        let offset = self.offset.max(other.offset);
        let end = self.end().min(other.end());
        Some(ByteRange::new(offset, end - offset))
    }

    /// True if `other` lies entirely within `self`. Empty ranges are
    /// contained anywhere their offset falls inside `self` or equals its end.
    #[inline]
    pub const fn contains_range(&self, other: &ByteRange) -> bool {
        self.offset <= other.offset && other.end() <= self.end()
    }

    /// True if the byte at absolute position `pos` lies within the range.
    #[inline]
    pub const fn contains(&self, pos: u64) -> bool {
        self.offset <= pos && pos < self.end()
    }

    /// Splits the range into the spans it covers in each fixed-size block.
    ///
    /// Returns an iterator of [`BlockSpan`]s in increasing block order. The
    /// first and last spans may be partial ("the first and the last block in
    /// the sequence … may not need to be fetched completely", §III-C).
    ///
    /// # Panics
    /// Panics if `block_size == 0`.
    pub fn block_spans(&self, block_size: u64) -> BlockSpanIter {
        assert!(block_size > 0, "block_size must be positive");
        BlockSpanIter {
            cursor: self.offset,
            end: self.end(),
            block_size,
        }
    }

    /// Number of blocks the range touches for the given block size.
    pub fn block_count(&self, block_size: u64) -> u64 {
        self.block_spans(block_size).count() as u64
    }
}

impl fmt::Debug for ByteRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.offset, self.end())
    }
}

impl fmt::Display for ByteRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.offset, self.end())
    }
}

/// The part of a [`ByteRange`] that falls within one block.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BlockSpan {
    /// Index of the block within the BLOB (block 0 starts at byte 0).
    pub block_index: u64,
    /// Offset of the span *within the block*.
    pub offset_in_block: u64,
    /// Length of the span in bytes; always `>= 1`.
    pub len: u64,
}

impl BlockSpan {
    /// Absolute byte range this span covers within the BLOB.
    #[inline]
    pub fn absolute(&self, block_size: u64) -> ByteRange {
        ByteRange::new(
            self.block_index * block_size + self.offset_in_block,
            self.len,
        )
    }

    /// True if the span covers its entire block.
    #[inline]
    pub fn is_full_block(&self, block_size: u64) -> bool {
        self.offset_in_block == 0 && self.len == block_size
    }
}

/// Iterator over the [`BlockSpan`]s of a range. See [`ByteRange::block_spans`].
pub struct BlockSpanIter {
    cursor: u64,
    end: u64,
    block_size: u64,
}

impl Iterator for BlockSpanIter {
    type Item = BlockSpan;

    fn next(&mut self) -> Option<BlockSpan> {
        if self.cursor >= self.end {
            return None;
        }
        let block_index = self.cursor / self.block_size;
        let offset_in_block = self.cursor % self.block_size;
        let span_end = ((block_index + 1) * self.block_size).min(self.end);
        let len = span_end - self.cursor;
        self.cursor = span_end;
        Some(BlockSpan {
            block_index,
            offset_in_block,
            len,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.cursor >= self.end {
            return (0, Some(0));
        }
        let n = (self.end - 1) / self.block_size - self.cursor / self.block_size + 1;
        (n as usize, Some(n as usize))
    }
}

impl ExactSizeIterator for BlockSpanIter {}

/// Rounds `n` up to the next multiple of `m` (`m > 0`).
#[inline]
pub fn round_up(n: u64, m: u64) -> u64 {
    debug_assert!(m > 0);
    n.div_ceil(m) * m
}

/// Number of blocks needed to hold `size` bytes with the given block size.
#[inline]
pub fn blocks_for(size: u64, block_size: u64) -> u64 {
    debug_assert!(block_size > 0);
    size.div_ceil(block_size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_geometry() {
        let r = ByteRange::new(10, 20);
        assert_eq!(r.end(), 30);
        assert!(!r.is_empty());
        assert!(r.contains(10));
        assert!(r.contains(29));
        assert!(!r.contains(30));
        assert_eq!(format!("{r}"), "[10, 30)");
    }

    #[test]
    fn empty_ranges_never_intersect() {
        let e = ByteRange::new(5, 0);
        let r = ByteRange::new(0, 100);
        assert!(!e.intersects(&r));
        assert!(!r.intersects(&e));
        assert!(!e.intersects(&e));
        assert_eq!(r.intersection(&e), None);
    }

    #[test]
    fn intersection_cases() {
        let a = ByteRange::new(0, 10);
        let b = ByteRange::new(5, 10);
        assert_eq!(a.intersection(&b), Some(ByteRange::new(5, 5)));
        let c = ByteRange::new(10, 5);
        assert_eq!(a.intersection(&c), None); // touching, half-open
        let d = ByteRange::new(2, 3);
        assert_eq!(a.intersection(&d), Some(d));
        assert!(a.contains_range(&d));
        assert!(!d.contains_range(&a));
    }

    #[test]
    fn spans_aligned() {
        let r = ByteRange::new(0, 256);
        let spans: Vec<_> = r.block_spans(64).collect();
        assert_eq!(spans.len(), 4);
        for (i, s) in spans.iter().enumerate() {
            assert_eq!(s.block_index, i as u64);
            assert_eq!(s.offset_in_block, 0);
            assert_eq!(s.len, 64);
            assert!(s.is_full_block(64));
        }
    }

    #[test]
    fn spans_unaligned_extremes() {
        // Mirrors §III-C: "the first and the last block ... may not need to
        // be fetched completely".
        let r = ByteRange::new(100, 100); // [100, 200) over 64-byte blocks
        let spans: Vec<_> = r.block_spans(64).collect();
        assert_eq!(spans.len(), 3);
        assert_eq!(
            spans[0],
            BlockSpan {
                block_index: 1,
                offset_in_block: 36,
                len: 28
            }
        );
        assert_eq!(
            spans[1],
            BlockSpan {
                block_index: 2,
                offset_in_block: 0,
                len: 64
            }
        );
        assert_eq!(
            spans[2],
            BlockSpan {
                block_index: 3,
                offset_in_block: 0,
                len: 8
            }
        );
        assert!(!spans[0].is_full_block(64));
        assert!(spans[1].is_full_block(64));
        assert_eq!(spans[0].absolute(64), ByteRange::new(100, 28));
    }

    #[test]
    fn spans_within_single_block() {
        let r = ByteRange::new(70, 10);
        let spans: Vec<_> = r.block_spans(64).collect();
        assert_eq!(spans.len(), 1);
        assert_eq!(
            spans[0],
            BlockSpan {
                block_index: 1,
                offset_in_block: 6,
                len: 10
            }
        );
    }

    #[test]
    fn empty_range_has_no_spans() {
        let r = ByteRange::new(128, 0);
        assert_eq!(r.block_spans(64).count(), 0);
        assert_eq!(r.block_count(64), 0);
    }

    #[test]
    fn span_iterator_len_is_exact() {
        let r = ByteRange::new(3, 1000);
        let it = r.block_spans(64);
        let expected = it.len();
        assert_eq!(r.block_spans(64).count(), expected);
    }

    #[test]
    fn rounding_helpers() {
        assert_eq!(round_up(0, 64), 0);
        assert_eq!(round_up(1, 64), 64);
        assert_eq!(round_up(64, 64), 64);
        assert_eq!(round_up(65, 64), 128);
        assert_eq!(blocks_for(0, 64), 0);
        assert_eq!(blocks_for(63, 64), 1);
        assert_eq!(blocks_for(64, 64), 1);
        assert_eq!(blocks_for(65, 64), 2);
    }
}
