//! Fig. 3(b): load-balancing quality of the block placement, measured as
//! the Manhattan distance between the data-layout vector and a perfectly
//! balanced layout (§V-D).
//!
//! The figure is produced by the **real engine**: each run deploys the
//! client over the harness adapters ([`crate::concurrent`], cost charging
//! left off — only the layout matters here) with
//! the backend's placement policy, appends the file block by block through
//! `BlobClient::append` — so the layout comes from the live provider
//! manager's allocation stream, not a detached policy loop — and measures
//! the resulting provider layout vector, at the paper's scale: 1→16 GB
//! files striped in 64 MB blocks over 247 providers (BSFS) or 269
//! datanodes (HDFS, whose sticky-random session policy runs on the same
//! placement code). Averages 5 repetitions like the paper.

use crate::concurrent;
use crate::constants::Constants;
use crate::report::{Figure, Series};
use crate::topology::Backend;
use blobseer_core::placement::manhattan_unbalance;
use blobseer_types::config::PlacementPolicy;

/// Repetitions per point ("these steps are repeated 5 times", §V-C).
pub const REPETITIONS: u64 = 5;

/// Real engine block size behind each modeled 64 MB block: the unbalance
/// metric only depends on the placement stream, so the payloads stay tiny.
const REAL_BLOCK: u64 = 64;

/// Unbalance of one placement run, measured off the real deployment's
/// layout vector after writing the file through the client.
pub fn unbalance_of(policy: PlacementPolicy, n_blocks: u64, n_providers: usize, seed: u64) -> f64 {
    let dep = concurrent::deploy(
        &Constants::default(),
        n_providers,
        n_providers,
        policy,
        seed,
        REAL_BLOCK,
    );
    let client = dep.sys.client(blobseer_types::NodeId::new(0));
    let blob = client.create();
    let payload = vec![0u8; REAL_BLOCK as usize];
    for _ in 0..n_blocks {
        client.append(blob, &payload).unwrap();
    }
    manhattan_unbalance(&dep.sys.layout_vector())
}

/// Mean unbalance over the standard repetitions.
pub fn mean_unbalance(policy: PlacementPolicy, n_blocks: u64, n_providers: usize) -> f64 {
    (0..REPETITIONS)
        .map(|rep| unbalance_of(policy, n_blocks, n_providers, 0xF163B + rep))
        .sum::<f64>()
        / REPETITIONS as f64
}

/// The policy each backend uses for a remote writer.
pub fn policy_for(c: &Constants, backend: Backend) -> PlacementPolicy {
    match backend {
        Backend::Bsfs => PlacementPolicy::RoundRobin,
        Backend::Hdfs => PlacementPolicy::StickyRandom {
            stickiness: c.hdfs_stickiness,
        },
    }
}

/// Reproduces Fig. 3(b): unbalance vs file size (GB).
pub fn run(c: &Constants, sizes_gb: &[f64]) -> Figure {
    let mut fig = Figure::new(
        "Fig. 3(b)",
        "Load-balancing evaluation (single writer)",
        "file size (GB)",
        "degree of unbalance (Manhattan)",
    );
    for backend in [Backend::Hdfs, Backend::Bsfs] {
        let providers = backend.microbench_storage_nodes();
        let mut series = Series::new(backend.label());
        for &gb in sizes_gb {
            let n_blocks = ((gb * 1024.0 * 1024.0 * 1024.0) / c.block_bytes as f64).round() as u64;
            series.push(
                gb,
                mean_unbalance(policy_for(c, backend), n_blocks, providers),
            );
        }
        fig.series.push(series);
    }
    fig
}

/// The standard x grid of the figure: 1 → 16 GB.
pub fn paper_sizes() -> Vec<f64> {
    (1..=16).map(|g| g as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hdfs_unbalance_dominates_bsfs_and_grows() {
        // At small sizes both policies sit near the metric's floor (with
        // b ≪ n blocks even a perfect placement has Manhattan distance
        // 2·b·(1−b/n) to the fractional ideal); the curves separate as the
        // file grows — exactly the divergence Fig. 3(b) plots.
        let c = Constants::default();
        let fig = run(&c, &[2.0, 8.0, 16.0]);
        let hdfs = &fig.series[0];
        let bsfs = &fig.series[1];
        assert!(hdfs.y_at(8.0).unwrap() > 1.5 * bsfs.y_at(8.0).unwrap());
        assert!(hdfs.y_at(16.0).unwrap() > 5.0 * bsfs.y_at(16.0).unwrap());
        // HDFS unbalance grows with file size (Fig. 3(b)'s rising curve);
        // BSFS stays near the floor everywhere.
        assert!(hdfs.y_at(16.0).unwrap() > hdfs.y_at(2.0).unwrap() * 2.0);
        let floor = |blocks: f64, n: f64| 2.0 * blocks * (1.0 - blocks / n);
        let b8 = bsfs.y_at(8.0).unwrap();
        assert!(b8 <= floor(128.0, 247.0) + 1e-6, "BSFS at floor: {b8}");
    }

    #[test]
    fn bsfs_round_robin_is_nearly_ideal() {
        let c = Constants::default();
        // 16 GB = 256 blocks over 247 providers: 9 providers hold 2 blocks,
        // the rest 1 → tiny fractional unbalance only.
        let u = mean_unbalance(policy_for(&c, Backend::Bsfs), 256, 247);
        let ideal = 256.0 / 247.0;
        let expected = 9.0 * (2.0 - ideal) + 238.0 * (ideal - 1.0);
        assert!((u - expected).abs() < 1e-6, "u={u} expected={expected}");
    }

    #[test]
    fn magnitudes_match_the_paper_at_16gb() {
        // Paper: HDFS ≈ 450 (and growing), BSFS ≈ 50 at 16 GB.
        let c = Constants::default();
        let fig = run(&c, &[16.0]);
        let hdfs = fig.series[0].y_at(16.0).unwrap();
        let bsfs = fig.series[1].y_at(16.0).unwrap();
        assert!((300.0..600.0).contains(&hdfs), "HDFS at 16 GB: {hdfs}");
        assert!(bsfs < 60.0, "BSFS at 16 GB: {bsfs}");
    }

    #[test]
    fn repetitions_are_deterministic() {
        let c = Constants::default();
        let a = run(&c, &[4.0]).series[0].y_at(4.0).unwrap();
        let b = run(&c, &[4.0]).series[0].y_at(4.0).unwrap();
        assert_eq!(a, b);
    }
}
