//! The read path: snapshot resolution, segment-tree descent and block
//! fetches (§III-C), plus the data-location primitive behind Hadoop's
//! affinity scheduling (§IV-C).

use crate::meta::key::BlockRange;
use crate::ports::{ProtocolOp, ProtocolPhase};
use crate::stats::EngineStats;
use crate::version_manager::SnapshotInfo;
use blobseer_types::{BlobId, BlockId, ByteRange, Error, Result, Version};
use bytes::{Bytes, BytesMut};

use super::{BlobClient, BlockLocation};

impl BlobClient {
    /// Reads `size` bytes at `offset` from the given snapshot
    /// (`None` = latest revealed). Fails with [`Error::OutOfBounds`] when
    /// the range exceeds the snapshot and [`Error::VersionNotRevealed`]
    /// when an explicit version is not yet visible (§III-A.5: readers only
    /// access revealed snapshots).
    pub fn read(
        &self,
        blob: BlobId,
        version: Option<Version>,
        offset: u64,
        size: u64,
    ) -> Result<Bytes> {
        self.observe(ProtocolOp::Read, ProtocolPhase::Start);
        let info = self.resolve(blob, version)?;
        self.check_bounds(offset, size, info.size)?;
        if size == 0 {
            return Ok(Bytes::new());
        }
        let bs = self.sys.cfg.block_size;
        let query = BlockRange::of_bytes(offset, size, bs);
        let located = self
            .sys
            .tree()
            .locate(info.root_blob, info.version, info.cap, query)?;
        self.observe(ProtocolOp::Read, ProtocolPhase::Located);
        // Fetch phase, vectored: group the needed blocks by the replica
        // provider chosen for each (deterministically by block index, to
        // spread load) and issue one `get_many` per provider. A failed
        // fetch falls back to the block's remaining replicas before the
        // read surfaces an error.
        let mut fetched: Vec<Option<Bytes>> = vec![None; located.len()];
        let mut batches: Vec<(usize, Vec<(usize, BlockId)>)> = Vec::new();
        for (i, loc) in located.iter().enumerate() {
            if let Some(desc) = &loc.desc {
                let replica = (loc.index as usize) % desc.providers.len();
                let pidx = desc.providers[replica] as usize;
                super::write::push_grouped(&mut batches, pidx, (i, desc.block_id));
            }
        }
        for (provider, items) in &batches {
            let ids: Vec<BlockId> = items.iter().map(|&(_, id)| id).collect();
            for (&(i, _), result) in items
                .iter()
                .zip(self.sys.providers.get_many(*provider, &ids))
            {
                fetched[i] = Some(match result {
                    Ok(block) => block,
                    Err(e) => self.fetch_fallback_replica(&located[i], *provider, e)?,
                });
            }
        }
        let mut out = BytesMut::with_capacity(size as usize);
        let spans = ByteRange::new(offset, size).block_spans(bs);
        for ((span, loc), block) in spans.zip(located.iter()).zip(fetched) {
            debug_assert_eq!(span.block_index, loc.index);
            match block {
                None => out.resize(out.len() + span.len as usize, 0),
                Some(block) => {
                    let lo = span.offset_in_block as usize;
                    let hi = (span.offset_in_block + span.len) as usize;
                    let avail = block.len();
                    if lo < avail {
                        out.extend_from_slice(&block[lo..hi.min(avail)]);
                    }
                    // Stored tail blocks may be shorter than the span when a
                    // later write extended the BLOB past them: zero-fill.
                    if hi > avail.max(lo) {
                        out.resize(out.len() + (hi - avail.max(lo)), 0);
                    }
                }
            }
        }
        debug_assert_eq!(out.len() as u64, size);
        EngineStats::add(&self.sys.stats.bytes_read, size);
        self.observe(ProtocolOp::Read, ProtocolPhase::Done);
        Ok(out.freeze())
    }

    /// Replica failover for one block fetch: the deterministically chosen
    /// replica on `failed_provider` refused or lost the block, so try the
    /// descriptor's remaining replicas in order before surfacing an error
    /// (the replication the paper relies on for fault tolerance, §VI-B —
    /// `desc.providers` lists healthy replicas the read would otherwise
    /// ignore). Returns the block, or the *last* replica's error once all
    /// are exhausted.
    fn fetch_fallback_replica(
        &self,
        loc: &crate::meta::tree::LocatedBlock,
        failed_provider: usize,
        first_err: blobseer_types::Error,
    ) -> Result<Bytes> {
        let desc = loc
            .desc
            .as_ref()
            .expect("fallback only runs for fetched descriptors");
        let mut last_err = first_err;
        for &p in &desc.providers {
            let p = p as usize;
            if p == failed_provider {
                continue;
            }
            match self.sys.providers.get(p, desc.block_id) {
                Ok(block) => return Ok(block),
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    /// The data-location primitive backing Hadoop's affinity scheduling
    /// (§IV-C). Returns one entry per block overlapping the range, with the
    /// nodes hosting its replicas.
    pub fn locations(
        &self,
        blob: BlobId,
        version: Option<Version>,
        offset: u64,
        size: u64,
    ) -> Result<Vec<BlockLocation>> {
        let info = self.resolve(blob, version)?;
        self.check_bounds(offset, size, info.size)?;
        if size == 0 {
            return Ok(Vec::new());
        }
        let bs = self.sys.cfg.block_size;
        let query = BlockRange::of_bytes(offset, size, bs);
        let located = self
            .sys
            .tree()
            .locate(info.root_blob, info.version, info.cap, query)?;
        let spans = ByteRange::new(offset, size).block_spans(bs);
        Ok(spans
            .zip(located)
            .map(|(span, loc)| BlockLocation {
                range: span.absolute(bs),
                block_index: loc.index,
                nodes: loc
                    .desc
                    .map(|d| {
                        d.providers
                            .iter()
                            .map(|&p| self.sys.providers.node(p as usize))
                            .collect()
                    })
                    .unwrap_or_default(),
            })
            .collect())
    }

    /// Overflow-safe range check: `offset + size` saturates instead of
    /// wrapping, so a huge offset fails with [`Error::OutOfBounds`] rather
    /// than slipping past the guard (release) or panicking (debug).
    fn check_bounds(&self, offset: u64, size: u64, snapshot_size: u64) -> Result<()> {
        match offset.checked_add(size) {
            Some(end) if end <= snapshot_size => Ok(()),
            _ => Err(Error::OutOfBounds {
                requested_end: offset.saturating_add(size),
                snapshot_size,
            }),
        }
    }

    pub(crate) fn resolve(&self, blob: BlobId, version: Option<Version>) -> Result<SnapshotInfo> {
        match version {
            None => {
                let (v, _) = self.sys.vm.latest(blob)?;
                self.sys.vm.snapshot_info(blob, v)
            }
            Some(v) => {
                let info = self.sys.vm.snapshot_info(blob, v)?;
                if !info.revealed {
                    return Err(Error::VersionNotRevealed {
                        blob: blob.raw(),
                        version: v.raw(),
                    });
                }
                Ok(info)
            }
        }
    }
}
