//! Opt-in lock-order / deadlock checking for the shim's [`crate::Mutex`],
//! [`crate::RwLock`] and [`crate::Condvar`].
//!
//! Every lock carries a `LockMeta`: a lazily assigned stable instance id
//! plus an optional `(name, rank)` class declared at construction
//! ([`crate::Mutex::named`] / [`crate::Mutex::ranked`]). When checking is
//! enabled the module maintains
//!
//! * a **per-thread held-lock stack** (pushed on acquire, popped by guard
//!   drop), and
//! * a **global lock-order graph** over lock *classes*: an edge `A -> B`
//!   is recorded the first time some thread blocks on a `B` lock while
//!   holding an `A` lock, together with the acquisition backtrace.
//!
//! On every blocking acquire the checker panics — *before* the thread can
//! deadlock — when it sees:
//!
//! * a **cycle**: acquiring `B` while holding `A` when the graph already
//!   proves `B -> … -> A` (message carries both acquisition backtraces);
//! * a **re-entrant acquisition** of the same instance (mutex re-lock,
//!   `write` while held in any mode, `read` under its own `write`;
//!   `read`-after-`read` is allowed, matching the shim's historical
//!   semantics);
//! * **two instances of the same class** held at once (give them distinct
//!   ranks — e.g. `ShardedMap` stripes are ranked by index);
//! * a **rank inversion** within a named family (ranks must ascend);
//! * a [`crate::Condvar`] wait that parks while the thread holds any
//!   checked lock besides the waited mutex.
//!
//! `try_lock`-style acquisitions never block, so they push a held record
//! (later blocking acquires must still order against them) but do not
//! record an incoming order edge themselves.
//!
//! Checking is off by default: every hook is behind a single relaxed
//! atomic load. It turns on when `BLOBSEER_LOCK_CHECK=1` is set in the
//! environment, when the crate is compiled with `--cfg lock_check`, or
//! when a test calls [`force_enable`].

use std::backtrace::Backtrace;
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex as StdMutex, PoisonError};

/// Per-lock identity: a lazily assigned instance id plus the optional
/// `(name, rank)` class declared at construction.
pub(crate) struct LockMeta {
    /// 0 = not yet assigned; ids start at 1.
    id: AtomicU64,
    name: Option<&'static str>,
    rank: u32,
}

impl LockMeta {
    pub(crate) const fn unnamed() -> Self {
        Self {
            id: AtomicU64::new(0),
            name: None,
            rank: 0,
        }
    }

    pub(crate) const fn named(name: &'static str, rank: u32) -> Self {
        Self {
            id: AtomicU64::new(0),
            name: Some(name),
            rank,
        }
    }

    /// The lock's stable instance id, assigned on first use under checking.
    fn instance(&self) -> u64 {
        let id = self.id.load(Ordering::Relaxed);
        if id != 0 {
            return id;
        }
        let fresh = NEXT_ID.fetch_add(1, Ordering::Relaxed) + 1;
        match self
            .id
            .compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => {
                if let Some(name) = self.name {
                    REGISTRY
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .insert((name, self.rank));
                }
                fresh
            }
            Err(existing) => existing,
        }
    }

    fn class(&self, instance: u64) -> ClassKey {
        match self.name {
            Some(name) => ClassKey::Named(name, self.rank),
            None => ClassKey::Anon(instance),
        }
    }
}

/// How a lock is (being) held. `Read` is shared; the other two exclusive.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum HoldKind {
    Mutex,
    Read,
    Write,
}

impl HoldKind {
    fn verb(self) -> &'static str {
        match self {
            HoldKind::Mutex => "lock",
            HoldKind::Read => "read",
            HoldKind::Write => "write",
        }
    }
}

/// Ordering key for the lock-order graph: named locks collapse onto their
/// `(name, rank)` class; anonymous locks are a class of one.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum ClassKey {
    Named(&'static str, u32),
    Anon(u64),
}

fn describe(class: ClassKey) -> String {
    match class {
        ClassKey::Named(name, 0) => format!("`{name}`"),
        ClassKey::Named(name, rank) => format!("`{name}#{rank}`"),
        ClassKey::Anon(id) => format!("<unnamed lock #{id}>"),
    }
}

/// One entry of the per-thread held-lock stack.
struct Held {
    instance: u64,
    class: ClassKey,
    kind: HoldKind,
}

/// Token carried across a condvar park: the waited mutex's held record,
/// popped before parking (the mutex is released while parked) and
/// re-pushed once the wait returns.
pub(crate) struct WaitToken(Option<Held>);

// ---------------------------------------------------------------------------
// Global state. The checker itself must not use the shim's own locks, so the
// graph and registry live behind `std::sync` primitives.
// ---------------------------------------------------------------------------

/// 0 = undecided, 1 = off, 2 = on.
static STATE: AtomicU8 = AtomicU8::new(0);
static NEXT_ID: AtomicU64 = AtomicU64::new(0);

struct EdgeInfo {
    /// Backtrace of the acquisition that first established the edge.
    backtrace: String,
}

type Graph = HashMap<ClassKey, HashMap<ClassKey, EdgeInfo>>;

static GRAPH: std::sync::LazyLock<StdMutex<Graph>> =
    std::sync::LazyLock::new(|| StdMutex::new(HashMap::new()));
static REGISTRY: StdMutex<BTreeSet<(&'static str, u32)>> = StdMutex::new(BTreeSet::new());

thread_local! {
    static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    /// Order edges this thread has already pushed through the global
    /// graph — re-observing one skips the global lock entirely.
    static SEEN_EDGES: RefCell<HashSet<(ClassKey, ClassKey)>> =
        RefCell::new(HashSet::new());
}

/// Whether lock checking is active for this process.
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_enabled(),
    }
}

#[cold]
fn init_enabled() -> bool {
    let on = cfg!(lock_check) || std::env::var("BLOBSEER_LOCK_CHECK").is_ok_and(|v| v == "1");
    // A racing `force_enable` must win over our computed "off".
    let _ = STATE.compare_exchange(
        0,
        if on { 2 } else { 1 },
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    STATE.load(Ordering::Relaxed) == 2
}

/// Turns checking on for the rest of the process, regardless of the
/// environment. Meant for tests; enabling is sticky.
pub fn force_enable() {
    STATE.store(2, Ordering::Relaxed);
}

/// Every named lock class that has been touched while checking was
/// enabled, as `name` / `name#rank` strings in sorted order.
pub fn registered_locks() -> Vec<String> {
    REGISTRY
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .map(|&(name, rank)| match rank {
            0 => name.to_string(),
            r => format!("{name}#{r}"),
        })
        .collect()
}

/// The lock-order edges observed so far, as `(from, to)` description
/// pairs. Useful for asserting that an expected hierarchy edge was
/// actually exercised by a workload.
pub fn graph_edges() -> Vec<(String, String)> {
    let graph = GRAPH.lock().unwrap_or_else(PoisonError::into_inner);
    let mut edges: Vec<(String, String)> = graph
        .iter()
        .flat_map(|(from, tos)| {
            tos.keys()
                .map(|to| (describe(*from), describe(*to)))
                .collect::<Vec<_>>()
        })
        .collect();
    edges.sort();
    edges
}

// ---------------------------------------------------------------------------
// Hooks called by the lock types.
// ---------------------------------------------------------------------------

/// Validates and records a blocking acquisition. Panics on any ordering
/// violation; on success the lock is pushed onto the held stack (the
/// guard's drop pops it).
pub(crate) fn before_blocking_acquire(meta: &LockMeta, kind: HoldKind) {
    if !enabled() {
        return;
    }
    let instance = meta.instance();
    let class = meta.class(instance);
    // Phase 1: per-thread checks, collecting the held classes to order
    // against. Any violation message is built (and the `RefCell` borrow
    // released) before panicking.
    let mut order_against: Vec<ClassKey> = Vec::new();
    let violation = HELD.with(|held| {
        let held = held.borrow();
        for entry in held.iter() {
            if entry.instance == instance {
                if entry.kind == HoldKind::Read && kind == HoldKind::Read {
                    continue; // shared re-entrant read: allowed
                }
                return Some(format!(
                    "re-entrant lock acquisition would self-deadlock: \
                     thread already holds {} (as {}) and is acquiring it again (as {})",
                    describe(class),
                    entry.kind.verb(),
                    kind.verb(),
                ));
            }
            match (entry.class, class) {
                (ClassKey::Named(held_name, held_rank), ClassKey::Named(name, rank))
                    if held_name == name =>
                {
                    if held_rank == rank {
                        return Some(format!(
                            "two locks of class {} held by one thread: rank instances \
                             of a lock family ordered by rank must never share a rank",
                            describe(class),
                        ));
                    }
                    if rank < held_rank {
                        return Some(format!(
                            "lock-rank inversion in family `{name}`: holding rank \
                             {held_rank} while acquiring rank {rank}; ranks must be \
                             acquired in ascending order",
                        ));
                    }
                }
                _ => {}
            }
            if !order_against.contains(&entry.class) {
                order_against.push(entry.class);
            }
        }
        None
    });
    if let Some(msg) = violation {
        panic!("{msg}");
    }
    // Phase 2: order edges through the global graph. Edges this thread has
    // already recorded are skipped without touching the global mutex.
    for from in order_against {
        let fresh = SEEN_EDGES.with(|seen| seen.borrow_mut().insert((from, class)));
        if !fresh {
            continue;
        }
        if let Some(msg) = record_edge(from, class) {
            // Withdraw the optimistic thread-local insert: the edge was
            // rejected, so it must stay visible as "unseen" for accurate
            // re-reporting if the panic is caught.
            SEEN_EDGES.with(|seen| {
                seen.borrow_mut().remove(&(from, class));
            });
            panic!("{msg}");
        }
    }
    push_held(instance, class, kind);
}

/// Records a successful non-blocking (`try_lock`) acquisition: pushes the
/// held record but, since the acquire could not have blocked, does not add
/// an incoming order edge.
pub(crate) fn on_try_acquire(meta: &LockMeta, kind: HoldKind) {
    if !enabled() {
        return;
    }
    let instance = meta.instance();
    let class = meta.class(instance);
    push_held(instance, class, kind);
}

fn push_held(instance: u64, class: ClassKey, kind: HoldKind) {
    HELD.with(|held| {
        held.borrow_mut().push(Held {
            instance,
            class,
            kind,
        })
    });
}

/// Pops the newest held record for `meta`, tolerating locks acquired
/// before checking was enabled (no record to pop).
pub(crate) fn on_release(meta: &LockMeta) {
    if !enabled() {
        return;
    }
    let instance = meta.instance();
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(pos) = held.iter().rposition(|e| e.instance == instance) {
            held.remove(pos);
        }
    });
}

/// Called when a [`crate::Condvar`] is about to park. Panics if the thread
/// holds any checked lock besides the waited mutex (the wakeup depends on
/// another thread taking that mutex — and likely the held lock too), then
/// pops the mutex's record for the duration of the park.
pub(crate) fn before_condvar_wait(meta: &LockMeta, cv_name: Option<&'static str>) -> WaitToken {
    if !enabled() {
        return WaitToken(None);
    }
    let instance = meta.instance();
    let violation = HELD.with(|held| {
        let held = held.borrow();
        held.iter().find(|e| e.instance != instance).map(|other| {
            let cv = cv_name.unwrap_or("<unnamed condvar>");
            format!(
                "Condvar `{cv}` wait while holding {}: parking keeps that lock \
                 held across the wait, deadlocking any notifier that needs it",
                describe(other.class),
            )
        })
    });
    if let Some(msg) = violation {
        panic!("{msg}");
    }
    let entry = HELD.with(|held| {
        let mut held = held.borrow_mut();
        held.iter()
            .rposition(|e| e.instance == instance)
            .map(|pos| held.remove(pos))
    });
    WaitToken(entry)
}

/// Re-pushes the waited mutex's held record after the park returns.
pub(crate) fn after_condvar_wait(token: WaitToken) {
    if let WaitToken(Some(entry)) = token {
        HELD.with(|held| held.borrow_mut().push(entry));
    }
}

// ---------------------------------------------------------------------------
// The global lock-order graph.
// ---------------------------------------------------------------------------

/// Inserts `from -> to`, first checking that the reverse direction is not
/// already reachable. Returns the violation message instead of inserting
/// when adding the edge would close a cycle.
fn record_edge(from: ClassKey, to: ClassKey) -> Option<String> {
    let mut graph = GRAPH.lock().unwrap_or_else(PoisonError::into_inner);
    if graph.get(&from).is_some_and(|m| m.contains_key(&to)) {
        return None;
    }
    if let Some(path) = find_path(&graph, to, from) {
        // `path` runs to -> … -> from; together with the attempted
        // from -> to edge it forms the cycle. The first hop of the path is
        // where the opposite order was established.
        let chain = path
            .iter()
            .map(|c| describe(*c))
            .collect::<Vec<_>>()
            .join(" -> ");
        let prior = graph
            .get(&path[0])
            .and_then(|m| m.get(&path[1]))
            .map(|e| e.backtrace.clone())
            .unwrap_or_else(|| "<unavailable>".to_string());
        drop(graph);
        let current = Backtrace::force_capture();
        return Some(format!(
            "lock-order cycle detected: acquiring {to_d} while holding {from_d}, \
             but the opposite order {chain} is already established.\n\
             \n--- opposite order ({p0} -> {p1}) first established at ---\n{prior}\n\
             \n--- conflicting acquisition of {to_d} at ---\n{current}",
            to_d = describe(to),
            from_d = describe(from),
            p0 = describe(path[0]),
            p1 = describe(path[1]),
        ));
    }
    let backtrace = Backtrace::force_capture().to_string();
    graph
        .entry(from)
        .or_default()
        .insert(to, EdgeInfo { backtrace });
    None
}

/// Depth-first search for a path `start -> … -> goal`, returned inclusive
/// of both endpoints.
fn find_path(graph: &Graph, start: ClassKey, goal: ClassKey) -> Option<Vec<ClassKey>> {
    let mut stack = vec![start];
    let mut visited = HashSet::new();
    let mut parent: HashMap<ClassKey, ClassKey> = HashMap::new();
    visited.insert(start);
    while let Some(node) = stack.pop() {
        if node == goal {
            let mut path = vec![goal];
            let mut cur = goal;
            while let Some(&p) = parent.get(&cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        if let Some(next) = graph.get(&node) {
            for &succ in next.keys() {
                if visited.insert(succ) {
                    parent.insert(succ, node);
                    stack.push(succ);
                }
            }
        }
    }
    None
}
