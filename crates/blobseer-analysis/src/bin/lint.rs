//! `cargo run -p blobseer-analysis --bin lint [root]` — scans every `.rs`
//! file of the workspace against the repo's lint rules (see the crate
//! docs and `docs/ANALYSIS.md`) and exits non-zero on any finding.

use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match std::env::args().nth(1) {
        Some(dir) => std::path::PathBuf::from(dir),
        None => blobseer_analysis::workspace_root(),
    };
    let findings = match blobseer_analysis::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("lint: cannot scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    for finding in &findings {
        println!("{finding}");
    }
    if findings.is_empty() {
        println!(
            "lint: OK — no violations ({} rules) under {}",
            blobseer_analysis::ALL_RULES.len(),
            root.display()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("lint: {} violation(s)", findings.len());
        ExitCode::FAILURE
    }
}
