//! Deployment topologies of the paper's experiments (§V) and shared
//! service plumbing for the discrete-event worlds.

use crate::constants::Constants;
use simnet::{FifoServer, SimDuration, SimTime};

/// The microbenchmark deployment (§V-C): 270 machines per cluster.
pub const MICROBENCH_MACHINES: usize = 270;

/// Datanodes available to HDFS in the microbenchmarks: one machine is the
/// namenode, the rest run datanodes.
pub const HDFS_DATANODES: usize = MICROBENCH_MACHINES - 1;

/// Data providers available to BSFS in the microbenchmarks: one version
/// manager, one provider manager, one namespace manager, 20 metadata
/// providers; the rest are data providers (§V-C).
pub const BSFS_PROVIDERS: usize = MICROBENCH_MACHINES - 3 - 20;

/// Which storage stack a model run exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    Bsfs,
    Hdfs,
}

impl Backend {
    /// Label for report series.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Bsfs => "BSFS",
            Backend::Hdfs => "HDFS",
        }
    }

    /// Storage nodes available in the 270-machine microbenchmark setup.
    pub fn microbench_storage_nodes(self) -> usize {
        match self {
            Backend::Bsfs => BSFS_PROVIDERS,
            Backend::Hdfs => HDFS_DATANODES,
        }
    }
}

/// The centralized and distributed metadata services of a deployment,
/// modeled as queueing servers (messages are small: latency + service, no
/// bandwidth component).
pub struct Services {
    /// BSFS's version manager or HDFS's namenode — the serialization point.
    pub central: FifoServer,
    /// BlobSeer's metadata providers (empty for HDFS).
    pub meta: Vec<FifoServer>,
    meta_rr: usize,
}

impl Services {
    /// Services for a backend under the given constants.
    pub fn new(c: &Constants, backend: Backend, meta_shards: usize) -> Self {
        let central_svc = match backend {
            Backend::Bsfs => c.vm_assign_svc,
            Backend::Hdfs => c.nn_svc,
        };
        Self {
            central: FifoServer::new(central_svc),
            meta: (0..meta_shards)
                .map(|_| FifoServer::new(c.meta_svc))
                .collect(),
            meta_rr: 0,
        }
    }

    /// One small RPC to the central service: request latency, queued
    /// service of `svc`, response latency. Returns the completion instant.
    pub fn central_call(
        &mut self,
        now: SimTime,
        svc: SimDuration,
        latency: SimDuration,
    ) -> SimTime {
        self.central.submit_with(now + latency, svc) + latency
    }

    /// Publishes (or fetches) `n_nodes` tree nodes, spread round-robin over
    /// the metadata shards, all issued at `start` in parallel. Returns the
    /// instant the last response arrives.
    pub fn meta_parallel(&mut self, start: SimTime, n_nodes: u64, latency: SimDuration) -> SimTime {
        debug_assert!(!self.meta.is_empty(), "BSFS paths need metadata shards");
        let mut done = start;
        for _ in 0..n_nodes {
            let shard = self.meta_rr % self.meta.len();
            self.meta_rr += 1;
            let t = self.meta[shard].submit(start + latency) + latency;
            if t > done {
                done = t;
            }
        }
        done
    }

    /// Fetches `n_nodes` tree nodes *sequentially* (a root-to-leaf descent
    /// must follow child references one hop at a time).
    pub fn meta_sequential(
        &mut self,
        start: SimTime,
        n_nodes: u64,
        latency: SimDuration,
    ) -> SimTime {
        let mut t = start;
        for _ in 0..n_nodes {
            let shard = self.meta_rr % self.meta.len();
            self.meta_rr += 1;
            t = self.meta[shard].submit(t + latency) + latency;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_matches_section_v() {
        assert_eq!(MICROBENCH_MACHINES, 270);
        assert_eq!(HDFS_DATANODES, 269);
        assert_eq!(BSFS_PROVIDERS, 247);
        assert_eq!(Backend::Bsfs.microbench_storage_nodes(), 247);
        assert_eq!(Backend::Hdfs.microbench_storage_nodes(), 269);
    }

    #[test]
    fn central_call_serializes() {
        let c = Constants::default();
        let mut s = Services::new(&c, Backend::Bsfs, 4);
        let lat = SimDuration::from_micros(100);
        let a = s.central_call(SimTime::ZERO, SimDuration::from_millis(2), lat);
        let b = s.central_call(SimTime::ZERO, SimDuration::from_millis(2), lat);
        // Second caller queues behind the first.
        assert_eq!(a.as_nanos(), 100_000 + 2_000_000 + 100_000);
        assert_eq!(b.as_nanos(), a.as_nanos() + 2_000_000);
    }

    #[test]
    fn meta_parallel_beats_sequential() {
        let c = Constants::default();
        let lat = SimDuration::from_micros(100);
        let mut s1 = Services::new(&c, Backend::Bsfs, 20);
        let mut s2 = Services::new(&c, Backend::Bsfs, 20);
        let par = s1.meta_parallel(SimTime::ZERO, 9, lat);
        let seq = s2.meta_sequential(SimTime::ZERO, 9, lat);
        assert!(
            par < seq,
            "parallel puts {par} must beat sequential descent {seq}"
        );
        // Sequential: 9 hops of (2×latency + service).
        assert_eq!(seq.as_nanos(), 9 * (200_000 + 150_000));
    }
}
