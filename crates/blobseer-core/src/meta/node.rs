//! Tree node payloads stored in the metadata DHT.
//!
//! Inner nodes hold *references* to their children: the version (and blob
//! lineage) whose write materialized the child at the implied position.
//! This is how "entire subtrees are shared among the trees associated to
//! the snapshot versions" (§III-A.3) — a new version's tree points into
//! older versions' subtrees instead of copying them.

use super::key::Pos;
use blobseer_types::{BlobId, BlockId, Version};
use std::fmt;

/// A reference to a tree node of some (possibly earlier, possibly still
/// in-flight) version at an implied position.
///
/// During concurrent writes a reference may name a node that has not been
/// written to the DHT yet — the writer "predicts" it from the version
/// manager's hints (§III-D). Readers never chase such dangling references
/// because snapshots are revealed only after all lower versions committed.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeRef {
    /// Lineage that materialized the referenced node.
    pub blob: BlobId,
    /// Version that materialized the referenced node.
    pub version: Version,
}

impl fmt::Debug for NodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "→{}/{}", self.blob, self.version)
    }
}

/// Where a block's replicas live and how long it is.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BlockDescriptor {
    /// The stored block id.
    pub block_id: BlockId,
    /// Dense provider indices holding replicas, primary first.
    pub providers: Vec<u32>,
    /// Bytes actually stored — equal to the block size except for the tail
    /// block of a snapshot, which may be shorter.
    pub len: u32,
}

/// One metadata tree node.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TreeNode {
    /// An interior node; children cover the left/right halves of its
    /// position. `None` means the half has never been written (a hole that
    /// reads as zeros).
    Inner {
        left: Option<NodeRef>,
        right: Option<NodeRef>,
    },
    /// A leaf holding the descriptor of the block covering its position.
    Leaf(BlockDescriptor),
    /// A leaf that aliases an earlier leaf at the same position (`None`
    /// aliases a hole). Produced by write-abort repair, which republishes
    /// the previous version's content without copying block data.
    LeafAlias(Option<NodeRef>),
}

impl TreeNode {
    /// The child reference for the half of `pos` containing `child_pos`.
    ///
    /// # Panics
    /// Panics if called on a leaf or with a position that is not a child.
    pub fn child_ref(&self, pos: Pos, child_pos: Pos) -> Option<NodeRef> {
        match self {
            TreeNode::Inner { left, right } => {
                if child_pos == pos.left() {
                    *left
                } else if child_pos == pos.right() {
                    *right
                } else {
                    panic!("{child_pos:?} is not a child of {pos:?}");
                }
            }
            _ => panic!("child_ref on a leaf node"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn child_ref_selects_halves() {
        let l = NodeRef {
            blob: BlobId::new(1),
            version: Version::new(3),
        };
        let r = NodeRef {
            blob: BlobId::new(1),
            version: Version::new(5),
        };
        let n = TreeNode::Inner {
            left: Some(l),
            right: Some(r),
        };
        let pos = Pos::new(0, 4);
        assert_eq!(n.child_ref(pos, Pos::new(0, 2)), Some(l));
        assert_eq!(n.child_ref(pos, Pos::new(2, 2)), Some(r));
    }

    #[test]
    #[should_panic(expected = "is not a child of")]
    fn wrong_child_position_panics() {
        let n = TreeNode::Inner {
            left: None,
            right: None,
        };
        n.child_ref(Pos::new(0, 4), Pos::new(0, 1));
    }

    #[test]
    #[should_panic(expected = "child_ref on a leaf")]
    fn leaf_has_no_children() {
        let n = TreeNode::Leaf(BlockDescriptor {
            block_id: BlockId::new(1),
            providers: vec![0],
            len: 10,
        });
        n.child_ref(Pos::new(0, 2), Pos::new(0, 1));
    }
}
