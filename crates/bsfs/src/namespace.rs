//! The BSFS namespace manager.
//!
//! "The Hadoop framework expects a classical hierarchical directory
//! structure, whereas BlobSeer provides a flat structure for BLOBs. For
//! this purpose, we had to design and implement a specialized namespace
//! manager, which is responsible for maintaining a file system namespace,
//! and for mapping files to BLOBs. For the sake of simplicity, this entity
//! is centralized." (§IV-A)
//!
//! As in the paper, interaction with this manager is minimized: it is
//! consulted for open/create/delete/rename/list only; all data traffic goes
//! straight to BlobSeer. An operation counter backs tests asserting that
//! reads and writes never touch the namespace.

use blobseer_types::{BlobId, Error, Result};
use dfs::DfsPath;
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

/// What a path resolves to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NsEntry {
    /// A directory.
    Dir,
    /// A file backed by the given BLOB.
    File(BlobId),
}

#[derive(Default)]
struct Tree {
    /// Every existing path → entry. The root is implicit.
    entries: HashMap<DfsPath, NsEntry>,
    /// Directory children by name (root included under "/").
    children: HashMap<DfsPath, BTreeMap<String, NsEntry>>,
}

impl Tree {
    fn entry(&self, path: &DfsPath) -> Option<NsEntry> {
        if path.is_root() {
            Some(NsEntry::Dir)
        } else {
            self.entries.get(path).copied()
        }
    }

    fn insert(&mut self, path: &DfsPath, entry: NsEntry) {
        debug_assert!(!path.is_root());
        self.entries.insert(path.clone(), entry);
        let parent = path.parent().expect("non-root"); // lint:allow(no-unwrap): callers guard against root paths
        self.children
            .entry(parent)
            .or_default()
            .insert(path.name().to_string(), entry);
    }

    fn remove(&mut self, path: &DfsPath) {
        self.entries.remove(path);
        if let Some(parent) = path.parent() {
            if let Some(ch) = self.children.get_mut(&parent) {
                ch.remove(path.name());
            }
        }
        self.children.remove(path);
    }
}

/// The centralized namespace service.
pub struct NamespaceManager {
    tree: RwLock<Tree>,
    ops: AtomicU64,
}

impl Default for NamespaceManager {
    fn default() -> Self {
        Self {
            tree: RwLock::named(Tree::default(), "bsfs.namespace.tree"),
            ops: AtomicU64::new(0),
        }
    }
}

impl NamespaceManager {
    /// An empty namespace (just the root).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of namespace RPCs served — used to verify that data access
    /// bypasses this centralized entity (§IV-A).
    pub fn op_count(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    fn bump(&self) {
        self.ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Resolves a path.
    pub fn lookup(&self, path: &DfsPath) -> Option<NsEntry> {
        self.bump();
        self.tree.read().entry(path)
    }

    /// Resolves a path that must be a file; returns its BLOB.
    pub fn lookup_file(&self, path: &DfsPath) -> Result<BlobId> {
        match self.lookup(path) {
            Some(NsEntry::File(b)) => Ok(b),
            Some(NsEntry::Dir) => Err(Error::NotADirectory(format!("{path} is a directory"))),
            None => Err(Error::NotFound(path.to_string())),
        }
    }

    /// Creates `path` (and missing ancestors) as directories.
    pub fn mkdirs(&self, path: &DfsPath) -> Result<()> {
        self.bump();
        let mut tree = self.tree.write();
        let mut cur = DfsPath::root();
        for comp in path.components() {
            cur = cur.join(comp).expect("validated components"); // lint:allow(no-unwrap): components come from a parsed DfsPath
            match tree.entry(&cur) {
                None => tree.insert(&cur, NsEntry::Dir),
                Some(NsEntry::Dir) => {}
                Some(NsEntry::File(_)) => {
                    return Err(Error::NotADirectory(cur.to_string()));
                }
            }
        }
        Ok(())
    }

    /// Binds `path` to a fresh file BLOB, creating missing parent
    /// directories (Hadoop's `create` semantics). With `overwrite`, an
    /// existing file is replaced and its old BLOB returned for cleanup.
    pub fn create_file(
        &self,
        path: &DfsPath,
        blob: BlobId,
        overwrite: bool,
    ) -> Result<Option<BlobId>> {
        if path.is_root() {
            return Err(Error::AlreadyExists("/".into()));
        }
        let parent = path.parent().expect("non-root"); // lint:allow(no-unwrap): callers guard against root paths
        self.mkdirs(&parent)?;
        self.bump();
        let mut tree = self.tree.write();
        match tree.entry(path) {
            Some(NsEntry::Dir) => Err(Error::AlreadyExists(format!("{path} is a directory"))),
            Some(NsEntry::File(old)) if overwrite => {
                tree.insert(path, NsEntry::File(blob));
                Ok(Some(old))
            }
            Some(NsEntry::File(_)) => Err(Error::AlreadyExists(path.to_string())),
            None => {
                tree.insert(path, NsEntry::File(blob));
                Ok(None)
            }
        }
    }

    /// Deletes a file or directory. Non-recursive deletion of a non-empty
    /// directory fails. Returns the BLOBs of all removed files for cleanup.
    pub fn delete(&self, path: &DfsPath, recursive: bool) -> Result<Vec<BlobId>> {
        self.bump();
        if path.is_root() {
            return Err(Error::InvalidPath("cannot delete the root".into()));
        }
        let mut tree = self.tree.write();
        match tree.entry(path) {
            None => Err(Error::NotFound(path.to_string())),
            Some(NsEntry::File(b)) => {
                tree.remove(path);
                Ok(vec![b])
            }
            Some(NsEntry::Dir) => {
                let has_children = tree
                    .children
                    .get(path)
                    .map(|c| !c.is_empty())
                    .unwrap_or(false);
                if has_children && !recursive {
                    return Err(Error::DirectoryNotEmpty(path.to_string()));
                }
                let mut blobs = Vec::new();
                let mut stack = vec![path.clone()];
                let mut to_remove = Vec::new();
                while let Some(p) = stack.pop() {
                    if let Some(children) = tree.children.get(&p) {
                        for (name, entry) in children {
                            let child = p.join(name).expect("validated"); // lint:allow(no-unwrap): name comes from an existing child entry
                            match entry {
                                NsEntry::File(b) => {
                                    blobs.push(*b);
                                    to_remove.push(child);
                                }
                                NsEntry::Dir => stack.push(child),
                            }
                        }
                    }
                    to_remove.push(p);
                }
                for p in to_remove {
                    tree.remove(&p);
                }
                Ok(blobs)
            }
        }
    }

    /// Renames a file or directory subtree. The destination must not exist
    /// and its parent must be an existing directory.
    pub fn rename(&self, src: &DfsPath, dst: &DfsPath) -> Result<()> {
        self.bump();
        if src.is_root() {
            return Err(Error::InvalidPath("cannot rename the root".into()));
        }
        if dst.starts_with(src) {
            return Err(Error::InvalidPath(format!(
                "cannot rename {src} into its own subtree {dst}"
            )));
        }
        let mut tree = self.tree.write();
        let src_entry = tree
            .entry(src)
            .ok_or_else(|| Error::NotFound(src.to_string()))?;
        if tree.entry(dst).is_some() {
            return Err(Error::AlreadyExists(dst.to_string()));
        }
        let dst_parent = dst
            .parent()
            .ok_or_else(|| Error::AlreadyExists("/".into()))?;
        match tree.entry(&dst_parent) {
            Some(NsEntry::Dir) => {}
            Some(NsEntry::File(_)) => return Err(Error::NotADirectory(dst_parent.to_string())),
            None => return Err(Error::NotFound(dst_parent.to_string())),
        }
        // Collect the subtree, then re-insert under the new prefix.
        let mut moves: Vec<(DfsPath, DfsPath, NsEntry)> = Vec::new();
        let mut stack = vec![(src.clone(), dst.clone(), src_entry)];
        while let Some((from, to, entry)) = stack.pop() {
            if entry == NsEntry::Dir {
                if let Some(children) = tree.children.get(&from) {
                    for (name, child_entry) in children.clone() {
                        stack.push((
                            from.join(&name).expect("validated"), // lint:allow(no-unwrap): rename iterates validated child names
                            to.join(&name).expect("validated"), // lint:allow(no-unwrap): rename iterates validated child names
                            child_entry,
                        ));
                    }
                }
            }
            moves.push((from, to, entry));
        }
        // Remove deepest-first, insert afterwards.
        for (from, _, _) in &moves {
            tree.remove(from);
        }
        for (_, to, entry) in &moves {
            tree.insert(to, *entry);
        }
        Ok(())
    }

    /// Serializes the whole namespace into a self-contained byte image —
    /// the BSFS analogue of an HDFS `fsimage`. Entries are emitted in
    /// path order, so equal namespaces produce identical images.
    ///
    /// With a disk-backed cluster this is how the (centralized,
    /// deliberately simple — §IV-A) namespace manager survives restart:
    /// store the image in a well-known BLOB, reload it with
    /// [`Self::import_image`] after reboot. Not counted in
    /// [`Self::op_count`]: it is recovery machinery, not a namespace RPC.
    pub fn export_image(&self) -> Vec<u8> {
        let tree = self.tree.read();
        let mut paths: Vec<&DfsPath> = tree.entries.keys().collect();
        paths.sort_by_key(|p| p.to_string());
        let mut w = blobseer_types::wire::WireWriter::new();
        w.put_u64(paths.len() as u64);
        for path in paths {
            w.put_str(&path.to_string());
            match tree.entries[path] {
                NsEntry::Dir => w.put_u8(0),
                NsEntry::File(blob) => {
                    w.put_u8(1);
                    w.put_u64(blob.raw());
                }
            }
        }
        w.into_vec()
    }

    /// Replaces the namespace contents with a previously exported image.
    /// Fails (leaving the namespace untouched) on an undecodable image.
    pub fn import_image(&self, image: &[u8]) -> Result<()> {
        let mut r = blobseer_types::wire::WireReader::new(image);
        let count = r.get_u64()?;
        let mut fresh = Tree::default();
        for _ in 0..count {
            let path = DfsPath::parse(&r.get_str()?)
                .map_err(|e| Error::InvalidPath(format!("namespace image: {e}")))?;
            let entry = match r.get_u8()? {
                0 => NsEntry::Dir,
                1 => NsEntry::File(BlobId::new(r.get_u64()?)),
                t => {
                    return Err(Error::InvalidPath(format!(
                        "namespace image: unknown entry kind {t}"
                    )))
                }
            };
            fresh.insert(&path, entry);
        }
        r.finish()?;
        *self.tree.write() = fresh;
        Ok(())
    }

    /// Lists a directory's children as `(name, entry)` pairs in name order.
    pub fn list(&self, path: &DfsPath) -> Result<Vec<(String, NsEntry)>> {
        self.bump();
        let tree = self.tree.read();
        match tree.entry(path) {
            None => Err(Error::NotFound(path.to_string())),
            Some(NsEntry::File(_)) => Err(Error::NotADirectory(path.to_string())),
            Some(NsEntry::Dir) => Ok(tree
                .children
                .get(path)
                .map(|c| c.iter().map(|(n, e)| (n.clone(), *e)).collect())
                .unwrap_or_default()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> DfsPath {
        DfsPath::parse(s).unwrap()
    }

    #[test]
    fn mkdirs_and_lookup() {
        let ns = NamespaceManager::new();
        ns.mkdirs(&p("/a/b/c")).unwrap();
        assert_eq!(ns.lookup(&p("/a/b")), Some(NsEntry::Dir));
        assert_eq!(ns.lookup(&p("/a/b/c")), Some(NsEntry::Dir));
        assert_eq!(ns.lookup(&p("/nope")), None);
        assert_eq!(ns.lookup(&DfsPath::root()), Some(NsEntry::Dir));
    }

    #[test]
    fn create_implicit_parents_and_overwrite() {
        let ns = NamespaceManager::new();
        assert_eq!(
            ns.create_file(&p("/x/y/f"), BlobId::new(1), false).unwrap(),
            None
        );
        assert_eq!(ns.lookup_file(&p("/x/y/f")).unwrap(), BlobId::new(1));
        // Replacing returns the evicted blob.
        assert_eq!(
            ns.create_file(&p("/x/y/f"), BlobId::new(2), true).unwrap(),
            Some(BlobId::new(1))
        );
        assert!(matches!(
            ns.create_file(&p("/x/y/f"), BlobId::new(3), false),
            Err(Error::AlreadyExists(_))
        ));
        // Cannot create over a dir.
        assert!(ns.create_file(&p("/x/y"), BlobId::new(4), true).is_err());
    }

    #[test]
    fn delete_files_and_trees() {
        let ns = NamespaceManager::new();
        ns.create_file(&p("/d/f1"), BlobId::new(1), false).unwrap();
        ns.create_file(&p("/d/sub/f2"), BlobId::new(2), false)
            .unwrap();
        assert!(matches!(
            ns.delete(&p("/d"), false),
            Err(Error::DirectoryNotEmpty(_))
        ));
        let mut blobs = ns.delete(&p("/d"), true).unwrap();
        blobs.sort();
        assert_eq!(blobs, vec![BlobId::new(1), BlobId::new(2)]);
        assert_eq!(ns.lookup(&p("/d")), None);
        assert_eq!(ns.lookup(&p("/d/sub/f2")), None);
    }

    #[test]
    fn rename_subtree() {
        let ns = NamespaceManager::new();
        ns.create_file(&p("/src/a/f"), BlobId::new(1), false)
            .unwrap();
        ns.mkdirs(&p("/dst")).unwrap();
        ns.rename(&p("/src"), &p("/dst/moved")).unwrap();
        assert_eq!(ns.lookup(&p("/src")), None);
        assert_eq!(
            ns.lookup_file(&p("/dst/moved/a/f")).unwrap(),
            BlobId::new(1)
        );
    }

    #[test]
    fn rename_guards() {
        let ns = NamespaceManager::new();
        ns.mkdirs(&p("/a/b")).unwrap();
        assert!(matches!(
            ns.rename(&p("/a"), &p("/a/b/inside")),
            Err(Error::InvalidPath(_))
        ));
        assert!(matches!(
            ns.rename(&p("/ghost"), &p("/g2")),
            Err(Error::NotFound(_))
        ));
        ns.create_file(&p("/f1"), BlobId::new(1), false).unwrap();
        ns.create_file(&p("/f2"), BlobId::new(2), false).unwrap();
        assert!(matches!(
            ns.rename(&p("/f1"), &p("/f2")),
            Err(Error::AlreadyExists(_))
        ));
        // Destination parent must exist.
        assert!(matches!(
            ns.rename(&p("/f1"), &p("/missing/f1")),
            Err(Error::NotFound(_))
        ));
    }

    #[test]
    fn list_sorted() {
        let ns = NamespaceManager::new();
        ns.create_file(&p("/dir/b"), BlobId::new(1), false).unwrap();
        ns.create_file(&p("/dir/a"), BlobId::new(2), false).unwrap();
        ns.mkdirs(&p("/dir/z")).unwrap();
        let names: Vec<String> = ns
            .list(&p("/dir"))
            .unwrap()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, vec!["a", "b", "z"]);
        assert!(ns.list(&p("/dir/a")).is_err());
        assert_eq!(ns.list(&p("/dir/z")).unwrap().len(), 0);
    }

    #[test]
    fn image_roundtrip_restores_the_namespace() {
        let ns = NamespaceManager::new();
        ns.create_file(&p("/data/in/part-0"), BlobId::new(7), false)
            .unwrap();
        ns.create_file(&p("/data/in/part-1"), BlobId::new(8), false)
            .unwrap();
        ns.mkdirs(&p("/empty/dir")).unwrap();
        let image = ns.export_image();

        let restored = NamespaceManager::new();
        restored.import_image(&image).unwrap();
        assert_eq!(
            restored.lookup_file(&p("/data/in/part-1")).unwrap(),
            BlobId::new(8)
        );
        assert_eq!(restored.lookup(&p("/empty/dir")), Some(NsEntry::Dir));
        assert_eq!(restored.list(&p("/data/in")).unwrap().len(), 2);
        // Equal namespaces export identical (sorted) images.
        assert_eq!(restored.export_image(), image);
        // Import replaces, not merges.
        restored
            .import_image(&NamespaceManager::new().export_image())
            .unwrap();
        assert_eq!(restored.lookup(&p("/data")), None);
    }

    #[test]
    fn corrupt_image_is_rejected_and_leaves_namespace_intact() {
        let ns = NamespaceManager::new();
        ns.create_file(&p("/keep"), BlobId::new(1), false).unwrap();
        let mut image = NamespaceManager::new().export_image();
        image.push(0xFF); // trailing garbage
        assert!(ns.import_image(&image).is_err());
        assert!(ns.import_image(&[0x02, 0x01]).is_err()); // truncated
        assert_eq!(ns.lookup_file(&p("/keep")).unwrap(), BlobId::new(1));
    }

    #[test]
    fn op_counter_tracks_interactions() {
        let ns = NamespaceManager::new();
        let before = ns.op_count();
        ns.mkdirs(&p("/a")).unwrap();
        ns.lookup(&p("/a"));
        assert_eq!(ns.op_count() - before, 2);
    }

    #[test]
    fn concurrent_namespace_ops() {
        use std::sync::Arc;
        let ns = Arc::new(NamespaceManager::new());
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let ns = Arc::clone(&ns);
                std::thread::spawn(move || {
                    for i in 0..50u64 {
                        let path = p(&format!("/t{t}/f{i}"));
                        ns.create_file(&path, BlobId::new(t * 1000 + i), false)
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..8u64 {
            assert_eq!(ns.list(&p(&format!("/t{t}"))).unwrap().len(), 50);
        }
    }
}
