//! Integration proof for the instrumented lock layer: a real networked
//! BlobSeer workload runs to completion with deadlock checking force-
//! enabled, and the blessed hierarchy edges it exercises show up in the
//! global lock-order graph.
//!
//! This is the "blessed hierarchy is acyclic" half of the detector's
//! contract; the shim's own unit tests and the `lock_smoke` binary cover
//! the "violations panic" half.

use blobseer_rpc::LoopbackCluster;
use blobseer_types::{BlobSeerConfig, NodeId};
use parking_lot::check;

#[test]
fn networked_workload_is_acyclic_under_checking() {
    check::force_enable();

    let mut cluster =
        LoopbackCluster::boot(BlobSeerConfig::small_for_tests().with_block_size(64), 4)
            .expect("boot loopback cluster");
    let sys = cluster.deploy().expect("deploy");
    let client = sys.client(NodeId::new(7));

    let blob = client.try_create().expect("create blob");
    let payload = vec![0xB5u8; 64 * 6];
    client.write(blob, 0, &payload).expect("write");
    let back = client
        .read(blob, None, 0, payload.len() as u64)
        .expect("read");
    assert_eq!(&back[..], &payload[..]);

    // Overlapping second writer, then a snapshot read of version 1 —
    // drives the version manager's reveal path and the metadata tree.
    client.write(blob, 64, &[0x11u8; 64 * 2]).expect("write2");
    let v1 = client
        .read(blob, Some(blobseer_types::Version::new(1)), 0, 64)
        .expect("versioned read");
    assert_eq!(&v1[..], &payload[..64]);

    cluster.shutdown();

    // The workload must have exercised (and blessed) the core hierarchy.
    let edges = check::graph_edges();
    let has = |from: &str, to: &str| {
        edges
            .iter()
            .any(|(f, t)| f.contains(from) && t.contains(to))
    };
    assert!(
        has("vm.blobs", "vm.blob.inner") || has("vm.blob.inner", "vm.blob.log"),
        "expected version-manager hierarchy edges; saw: {edges:?}"
    );
    let names = check::registered_locks();
    for expected in ["vm.blobs", "rpc.mux.writer", "rpc.server.conns"] {
        assert!(
            names.iter().any(|n| n.contains(expected)),
            "lock `{expected}` never registered; saw: {names:?}"
        );
    }
}
