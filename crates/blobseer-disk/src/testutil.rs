//! Std-only test scaffolding: a unique, self-cleaning temporary
//! directory.
//!
//! The sandboxed build environment has no crates.io, so the usual
//! `tempfile` crate is unavailable; this is the minimal subset the disk
//! tests need. It lives in the library (not `#[cfg(test)]`) so both this
//! crate's unit tests and the workspace-level `tests/` suites and benches
//! can reach it.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic disambiguator for directories created within one process.
static NEXT_TEMP_ID: AtomicU64 = AtomicU64::new(0);

/// A uniquely named directory under the system temp root, removed
/// recursively on drop.
///
/// Uniqueness combines the process id, an in-process counter and the
/// clock, so concurrent test processes and repeated runs never collide:
///
/// ```
/// use blobseer_disk::testutil::TempDir;
/// let tmp = TempDir::new("doc");
/// std::fs::write(tmp.path().join("probe"), b"x").unwrap();
/// assert!(tmp.path().join("probe").exists());
/// ```
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates a fresh directory whose name starts with `label`.
    ///
    /// # Panics
    ///
    /// Panics when the directory cannot be created — in a test helper,
    /// failing loudly beats limping on against a missing directory.
    pub fn new(label: &str) -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        let path = std::env::temp_dir().join(format!(
            "blobseer-{label}-{}-{}-{nanos}",
            std::process::id(),
            NEXT_TEMP_ID.fetch_add(1, Ordering::Relaxed),
        ));
        std::fs::create_dir_all(&path)
            .unwrap_or_else(|e| panic!("create temp dir {}: {e}", path.display()));
        Self { path }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        // Best effort: a failed cleanup must not turn a passing test into
        // a panic-while-panicking abort.
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directories_are_unique_and_cleaned_up() {
        let a = TempDir::new("uniq");
        let b = TempDir::new("uniq");
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        let kept = a.path().to_path_buf();
        std::fs::create_dir_all(kept.join("nested/deeper")).unwrap();
        std::fs::write(kept.join("nested/deeper/file"), b"x").unwrap();
        drop(a);
        assert!(!kept.exists(), "drop removes the tree recursively");
        assert!(b.path().is_dir(), "other dirs untouched");
    }
}
