//! Minimal, API-compatible stand-in for the `criterion` crate, vendored
//! because the build environment has no crates.io access.
//!
//! It implements the measurement surface this workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size`/`throughput`/`bench_with_input`, [`BenchmarkId`],
//! [`Throughput`] and the [`criterion_group!`]/[`criterion_main!`] macros —
//! with a simple wall-clock harness: adaptive iteration counts targeted at
//! ~`MEASURE_MS` of runtime per benchmark, reporting mean time per
//! iteration (and MiB/s when a byte throughput is declared). There is no
//! statistical analysis, HTML report, or baseline comparison.
//!
//! Under `cargo test` / `cargo bench -- --test` (cargo passes `--test` to
//! harness-less bench targets) each benchmark body runs exactly once, so
//! bench targets double as smoke tests.
#![forbid(unsafe_code)]

pub use std::hint::black_box;

use std::fmt::Display;
use std::time::{Duration, Instant};

const WARMUP_ITERS: u64 = 2;
const MEASURE_MS: u64 = 120;
const MAX_ITERS: u64 = 10_000;

/// Identifies a benchmark within a group: `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the routine.
pub struct Bencher {
    test_mode: bool,
    /// Mean seconds per iteration, filled in by `iter`.
    mean_secs: f64,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.mean_secs = 0.0;
            self.iters = 1;
            return;
        }
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        // Estimate a single-iteration cost, then size the batch to land
        // near MEASURE_MS of total measurement time.
        let probe = Instant::now();
        black_box(routine());
        let once = probe.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(MEASURE_MS);
        let iters = ((target.as_secs_f64() / once.as_secs_f64()).ceil() as u64).clamp(1, MAX_ITERS);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let total = start.elapsed();
        self.mean_secs = total.as_secs_f64() / iters as f64;
        self.iters = iters;
    }
}

fn format_secs(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:9.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:9.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:9.2} ms", secs * 1e3)
    } else {
        format!("{secs:9.2} s ")
    }
}

fn run_one(
    full_id: &str,
    test_mode: bool,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        test_mode,
        mean_secs: 0.0,
        iters: 0,
    };
    f(&mut b);
    if test_mode {
        println!("{full_id:<56} ok (test mode)");
        return;
    }
    let mut line = format!(
        "{:<56} time: {}  ({} iters)",
        full_id,
        format_secs(b.mean_secs),
        b.iters
    );
    if let (Some(Throughput::Bytes(n)), true) = (throughput, b.mean_secs > 0.0) {
        let mibs = n as f64 / b.mean_secs / (1024.0 * 1024.0);
        line.push_str(&format!("  thrpt: {mibs:10.1} MiB/s"));
    }
    println!("{line}");
}

/// The top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes harness-less bench targets with `--test` from
        // `cargo test` and with `--bench` from `cargo bench`.
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { test_mode }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.test_mode, None, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's harness sizes iteration
    /// counts adaptively instead of sampling.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.criterion.test_mode, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.criterion.test_mode, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_positive_mean() {
        let mut b = Bencher {
            test_mode: false,
            mean_secs: 0.0,
            iters: 0,
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(black_box(1));
        });
        assert!(b.iters >= 1);
        assert!(b.mean_secs >= 0.0);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion { test_mode: true };
        let mut g = c.benchmark_group("g");
        g.sample_size(10).throughput(Throughput::Bytes(1024));
        g.bench_function("f", |b| b.iter(|| black_box(2 + 2)));
        g.bench_with_input(BenchmarkId::new("with", 3), &3, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter("p").id, "p");
    }
}
