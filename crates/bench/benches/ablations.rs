//! Ablation sweeps over the design choices DESIGN.md calls out. Each
//! "benchmark" runs the figure model at several settings of one knob and
//! prints the resulting series, so the sensitivity of the reproduced
//! curves is itself a recorded artifact.
//!
//! * placement policy × {round-robin, least-loaded, random, sticky};
//! * HDFS placement stickiness (Fig. 3(b)'s magnitude driver);
//! * metadata-provider count (the decentralization claim of §III-A.3);
//! * version-manager service time (Fig. 5's knee);
//! * append vs random-offset writes (§V-F's closing claim).

use blobseer_core::placement::manhattan_unbalance;
use blobseer_types::config::PlacementPolicy;
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::{fig3b, fig5, Constants};
use simnet::SimDuration;
use std::hint::black_box;

/// Unbalance of every policy at the 16 GB point.
fn ablate_policies(c: &mut Criterion) {
    let policies = [
        ("round_robin", PlacementPolicy::RoundRobin),
        ("least_loaded", PlacementPolicy::LeastLoaded),
        ("random", PlacementPolicy::Random),
        (
            "sticky_65",
            PlacementPolicy::StickyRandom { stickiness: 65 },
        ),
    ];
    println!("# ablation: placement policy → unbalance (256 blocks / 269 nodes)");
    for (name, policy) in policies {
        let u = fig3b::mean_unbalance(policy, 256, 269);
        println!("{name:>14}: {u:8.1}");
    }
    let mut g = c.benchmark_group("ablations/policy_unbalance");
    g.sample_size(10);
    g.bench_function("all_policies", |b| {
        b.iter(|| {
            for (_, policy) in policies {
                black_box(fig3b::mean_unbalance(policy, 256, 269));
            }
        })
    });
    g.finish();
}

/// Fig. 3(b) magnitude vs the stickiness constant.
fn ablate_stickiness(c: &mut Criterion) {
    println!("# ablation: HDFS stickiness → unbalance at 16 GB");
    for stickiness in [0u8, 20, 40, 55, 65, 80] {
        let u = fig3b::mean_unbalance(PlacementPolicy::StickyRandom { stickiness }, 256, 269);
        println!("stickiness {stickiness:>3}%: {u:8.1}");
    }
    let mut g = c.benchmark_group("ablations/stickiness");
    g.sample_size(10);
    g.bench_function("sweep", |b| {
        b.iter(|| {
            for s in [0u8, 40, 80] {
                black_box(fig3b::mean_unbalance(
                    PlacementPolicy::StickyRandom { stickiness: s },
                    256,
                    269,
                ));
            }
        })
    });
    g.finish();
}

/// Fig. 5 aggregate vs metadata-provider count: decentralized metadata is
/// what keeps the appenders scaling (§III-A.3).
fn ablate_meta_shards(c: &mut Criterion) {
    println!("# ablation: metadata providers → Fig. 5 aggregate at 250 appenders (MB/s)");
    for shards in [1usize, 5, 10, 20, 40] {
        let cst = Constants {
            meta_shards: shards,
            ..Constants::default()
        };
        let t = fig5::aggregated_mbps(&cst, fig5::OpMode::Append, 250);
        println!("{shards:>3} shards: {t:10.0}");
    }
    let mut g = c.benchmark_group("ablations/meta_shards");
    g.sample_size(10);
    g.bench_function("sweep", |b| {
        b.iter(|| {
            for shards in [1usize, 20] {
                let cst = Constants {
                    meta_shards: shards,
                    ..Constants::default()
                };
                black_box(fig5::aggregated_mbps(&cst, fig5::OpMode::Append, 250));
            }
        })
    });
    g.finish();
}

/// Fig. 5 aggregate vs the version-manager service time — the knee of the
/// scaling curve.
fn ablate_vm_service(c: &mut Criterion) {
    println!("# ablation: VM assignment service time → Fig. 5 aggregate at 250 appenders (MB/s)");
    for ms in [1u64, 2, 4, 8, 16] {
        let cst = Constants {
            vm_assign_svc: SimDuration::from_millis(ms),
            ..Constants::default()
        };
        let t = fig5::aggregated_mbps(&cst, fig5::OpMode::Append, 250);
        println!("{ms:>3} ms: {t:10.0}");
    }
    let mut g = c.benchmark_group("ablations/vm_service");
    g.sample_size(10);
    g.bench_function("sweep", |b| {
        b.iter(|| {
            for ms in [1u64, 16] {
                let cst = Constants {
                    vm_assign_svc: SimDuration::from_millis(ms),
                    ..Constants::default()
                };
                black_box(fig5::aggregated_mbps(&cst, fig5::OpMode::Append, 250));
            }
        })
    });
    g.finish();
}

/// §V-F's claim: appends ≈ random-offset writes.
fn ablate_append_vs_write(c: &mut Criterion) {
    println!("# ablation: append vs random-offset write (aggregated MB/s)");
    let cst = Constants::default();
    for n in [50usize, 150, 250] {
        let a = fig5::aggregated_mbps(&cst, fig5::OpMode::Append, n);
        let w = fig5::aggregated_mbps(&cst, fig5::OpMode::RandomWrite, n);
        println!(
            "{n:>3} clients: append {a:9.0}  write {w:9.0}  delta {:+5.1}%",
            (w - a) / a * 100.0
        );
    }
    let mut g = c.benchmark_group("ablations/append_vs_write");
    g.sample_size(10);
    g.bench_function("both_modes_250", |b| {
        b.iter(|| {
            black_box(fig5::aggregated_mbps(&cst, fig5::OpMode::Append, 250));
            black_box(fig5::aggregated_mbps(&cst, fig5::OpMode::RandomWrite, 250));
        })
    });
    g.finish();
}

/// Live-engine sanity for the policy ablation: run the real provider
/// manager under each policy and score the layout.
fn ablate_live_policies(c: &mut Criterion) {
    use blobseer_core::BlobSeer;
    use blobseer_types::{BlobSeerConfig, NodeId};
    println!("# ablation: live-engine layout unbalance per policy (64 blocks / 16 providers)");
    let policies = [
        ("round_robin", PlacementPolicy::RoundRobin),
        ("least_loaded", PlacementPolicy::LeastLoaded),
        ("random", PlacementPolicy::Random),
        (
            "sticky_65",
            PlacementPolicy::StickyRandom { stickiness: 65 },
        ),
    ];
    for (name, policy) in policies {
        let sys = BlobSeer::deploy(
            BlobSeerConfig::default()
                .with_block_size(1024)
                .with_placement(policy),
            16,
        );
        let client = sys.client(NodeId::new(99));
        let blob = client.create();
        client.write(blob, 0, &vec![1u8; 64 * 1024]).unwrap();
        println!(
            "{name:>14}: {:8.1}",
            manhattan_unbalance(&sys.layout_vector())
        );
    }
    let mut g = c.benchmark_group("ablations/live_policy_layout");
    g.sample_size(10);
    g.bench_function("round_robin_write", |b| {
        b.iter(|| {
            let sys = BlobSeer::deploy(BlobSeerConfig::default().with_block_size(1024), 16);
            let client = sys.client(NodeId::new(99));
            let blob = client.create();
            client.write(blob, 0, &vec![1u8; 64 * 1024]).unwrap();
            black_box(manhattan_unbalance(&sys.layout_vector()))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    ablate_policies,
    ablate_stickiness,
    ablate_meta_shards,
    ablate_vm_service,
    ablate_append_vs_write,
    ablate_live_policies
);
criterion_main!(benches);
