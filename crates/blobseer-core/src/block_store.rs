//! Data providers: the processes that "physically store the blocks generated
//! by appends and writes" (§III-B).
//!
//! A [`DataProvider`] is an in-memory block store. Blocks are immutable once
//! stored — the cornerstone of BlobSeer's concurrency control ("no existing
//! data or metadata is ever modified", §III-A.4) — so the store is a
//! concurrent map from [`BlockId`] to [`Bytes`], lock-striped
//! ([`ShardedMap`]) so concurrent writers hitting the same provider do not
//! serialize on one global lock. [`Bytes`] payloads make reads zero-copy:
//! readers receive a reference-counted view.

use crate::sharded::{stripe_runs, ShardedMap, DEFAULT_SHARDS};
use blobseer_types::{BlockId, Error, NodeId, Result};
use bytes::Bytes;
use std::sync::atomic::{AtomicU64, Ordering};

/// One data provider process, bound to a cluster node.
#[derive(Debug)]
pub struct DataProvider {
    node: NodeId,
    blocks: ShardedMap<BlockId, Bytes>,
    bytes_stored: AtomicU64,
    puts: AtomicU64,
    gets: AtomicU64,
}

impl DataProvider {
    /// Creates an empty provider hosted on `node`, striped over the default
    /// shard count.
    pub fn new(node: NodeId) -> Self {
        Self::with_shards(node, DEFAULT_SHARDS)
    }

    /// Creates a provider with an explicit lock-stripe count. `1` reproduces
    /// the seed's single global `RwLock<HashMap>` — the contention baseline
    /// of `bench/benches/store_contention.rs` and the equivalence oracle of
    /// `tests/ports_equivalence.rs`.
    pub fn with_shards(node: NodeId, n_shards: usize) -> Self {
        Self {
            node,
            blocks: ShardedMap::named(n_shards, "data_provider.blocks"),
            bytes_stored: AtomicU64::new(0),
            puts: AtomicU64::new(0),
            gets: AtomicU64::new(0),
        }
    }

    /// The cluster node hosting this provider.
    #[inline]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Stores a block. Blocks are immutable: storing the same id twice with
    /// different content is an engine bug and panics in debug builds;
    /// idempotent re-puts (same content, e.g. a retried replica write) are
    /// accepted.
    pub fn put(&self, id: BlockId, data: Bytes) {
        let mut map = self.blocks.shard_for(&id).write();
        match map.get(&id) {
            Some(existing) => {
                debug_assert_eq!(
                    existing, &data,
                    "block {id} rewritten with different content — blocks are immutable"
                );
            }
            None => {
                self.bytes_stored
                    .fetch_add(data.len() as u64, Ordering::Relaxed);
                map.insert(id, data);
            }
        }
        self.puts.fetch_add(1, Ordering::Relaxed);
    }

    /// Stores a batch of blocks, taking each lock stripe once per batch
    /// instead of once per block. Observationally equivalent to calling
    /// [`Self::put`] per item in order (within a stripe, items land in
    /// batch order, so intra-batch re-puts behave identically).
    pub fn put_many(&self, items: &[(BlockId, Bytes)]) {
        for (shard, range) in stripe_runs(&self.blocks, items.iter().map(|(id, _)| id)) {
            let mut map = self.blocks.shard_at(shard).write();
            for &i in &range {
                let (id, data) = &items[i];
                match map.get(id) {
                    Some(existing) => {
                        debug_assert_eq!(
                            existing, data,
                            "block {id} rewritten with different content — blocks are immutable"
                        );
                    }
                    None => {
                        self.bytes_stored
                            .fetch_add(data.len() as u64, Ordering::Relaxed);
                        map.insert(*id, data.clone());
                    }
                }
            }
        }
        self.puts.fetch_add(items.len() as u64, Ordering::Relaxed);
    }

    /// Fetches a batch of blocks, one read-lock acquisition per stripe.
    /// Per-item results in input order.
    pub fn get_many(&self, ids: &[BlockId]) -> Vec<Result<Bytes>> {
        self.gets.fetch_add(ids.len() as u64, Ordering::Relaxed);
        let mut out: Vec<Result<Bytes>> = ids
            .iter()
            .map(|&id| Err(Error::MissingBlock(id.raw())))
            .collect();
        for (shard, range) in stripe_runs(&self.blocks, ids.iter()) {
            let map = self.blocks.shard_at(shard).read();
            for i in range {
                if let Some(data) = map.get(&ids[i]) {
                    out[i] = Ok(data.clone());
                }
            }
        }
        out
    }

    /// Deletes a batch of blocks, one write-lock acquisition per stripe.
    /// Returns the bytes freed per block, in input order (0 if absent).
    pub fn delete_many(&self, ids: &[BlockId]) -> Vec<u64> {
        let mut out = vec![0u64; ids.len()];
        for (shard, range) in stripe_runs(&self.blocks, ids.iter()) {
            let mut map = self.blocks.shard_at(shard).write();
            for i in range {
                if let Some(data) = map.remove(&ids[i]) {
                    let n = data.len() as u64;
                    self.bytes_stored.fetch_sub(n, Ordering::Relaxed);
                    out[i] = n;
                }
            }
        }
        out
    }

    /// Fetches a block (zero-copy clone of the payload).
    pub fn get(&self, id: BlockId) -> Result<Bytes> {
        self.gets.fetch_add(1, Ordering::Relaxed);
        self.blocks
            .get_cloned(&id)
            .ok_or(Error::MissingBlock(id.raw()))
    }

    /// True if the provider holds the block.
    pub fn contains(&self, id: BlockId) -> bool {
        self.blocks.contains_key(&id)
    }

    /// Deletes a block (garbage collection). Returns the number of bytes
    /// freed (0 if absent).
    pub fn delete(&self, id: BlockId) -> u64 {
        match self.blocks.remove(&id) {
            Some(data) => {
                let n = data.len() as u64;
                self.bytes_stored.fetch_sub(n, Ordering::Relaxed);
                n
            }
            None => 0,
        }
    }

    /// Number of blocks currently stored.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total payload bytes currently stored.
    pub fn bytes_stored(&self) -> u64 {
        self.bytes_stored.load(Ordering::Relaxed)
    }

    /// `(puts, gets)` served since creation.
    pub fn op_counts(&self) -> (u64, u64) {
        (
            self.puts.load(Ordering::Relaxed),
            self.gets.load(Ordering::Relaxed),
        )
    }
}

/// The set of data providers of a deployment, indexed densely.
///
/// Provider `i` lives on the node returned by `provider(i).node()`; the
/// provider manager allocates blocks by index into this set.
#[derive(Debug)]
pub struct ProviderSet {
    providers: Vec<DataProvider>,
}

impl ProviderSet {
    /// Creates `n` providers hosted on nodes produced by `node_of`.
    pub fn new(n: usize, node_of: impl Fn(usize) -> NodeId) -> Self {
        Self::with_shards(n, node_of, DEFAULT_SHARDS)
    }

    /// Creates `n` providers with an explicit per-provider lock-stripe
    /// count (`1` = the seed's global-lock layout).
    pub fn with_shards(n: usize, node_of: impl Fn(usize) -> NodeId, n_shards: usize) -> Self {
        assert!(n > 0, "need at least one data provider");
        Self {
            providers: (0..n)
                .map(|i| DataProvider::with_shards(node_of(i), n_shards))
                .collect(),
        }
    }

    /// Number of providers.
    #[inline]
    pub fn len(&self) -> usize {
        self.providers.len()
    }

    /// Always false: deployments have at least one provider.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The provider at dense index `i`.
    #[inline]
    pub fn get(&self, i: usize) -> &DataProvider {
        &self.providers[i]
    }

    /// Iterates over all providers.
    pub fn iter(&self) -> impl Iterator<Item = &DataProvider> {
        self.providers.iter()
    }

    /// Finds the dense index of the provider hosted on `node`, if any.
    pub fn index_of_node(&self, node: NodeId) -> Option<usize> {
        self.providers.iter().position(|p| p.node() == node)
    }

    /// Per-provider block counts — the "data layout vector" used by the
    /// paper's load-balancing metric (§V-D, Fig. 3(b)).
    pub fn layout_vector(&self) -> Vec<u64> {
        self.providers
            .iter()
            .map(|p| p.block_count() as u64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn provider() -> DataProvider {
        DataProvider::new(NodeId::new(3))
    }

    #[test]
    fn put_get_roundtrip() {
        let p = provider();
        let data = Bytes::from_static(b"hello blocks");
        p.put(BlockId::new(1), data.clone());
        assert_eq!(p.get(BlockId::new(1)).unwrap(), data);
        assert_eq!(p.block_count(), 1);
        assert_eq!(p.bytes_stored(), 12);
        assert_eq!(p.op_counts(), (1, 1));
    }

    #[test]
    fn missing_block_is_an_error() {
        let p = provider();
        assert_eq!(p.get(BlockId::new(9)), Err(Error::MissingBlock(9)));
    }

    #[test]
    fn idempotent_reput_is_accepted() {
        let p = provider();
        let data = Bytes::from_static(b"same");
        p.put(BlockId::new(1), data.clone());
        p.put(BlockId::new(1), data); // replica retry
        assert_eq!(p.block_count(), 1);
        assert_eq!(p.bytes_stored(), 4, "no double counting");
    }

    #[test]
    #[should_panic(expected = "blocks are immutable")]
    #[cfg(debug_assertions)]
    fn rewriting_a_block_panics_in_debug() {
        let p = provider();
        p.put(BlockId::new(1), Bytes::from_static(b"aa"));
        p.put(BlockId::new(1), Bytes::from_static(b"bb"));
    }

    #[test]
    fn delete_frees_bytes() {
        let p = provider();
        p.put(BlockId::new(1), Bytes::from_static(b"12345"));
        assert_eq!(p.delete(BlockId::new(1)), 5);
        assert_eq!(p.delete(BlockId::new(1)), 0, "second delete is a no-op");
        assert_eq!(p.block_count(), 0);
        assert_eq!(p.bytes_stored(), 0);
        assert!(!p.contains(BlockId::new(1)));
    }

    #[test]
    fn provider_set_layout_vector() {
        let set = ProviderSet::new(3, |i| NodeId::new(10 + i as u64));
        set.get(0).put(BlockId::new(1), Bytes::from_static(b"x"));
        set.get(0).put(BlockId::new(2), Bytes::from_static(b"y"));
        set.get(2).put(BlockId::new(3), Bytes::from_static(b"z"));
        assert_eq!(set.layout_vector(), vec![2, 0, 1]);
        assert_eq!(set.index_of_node(NodeId::new(12)), Some(2));
        assert_eq!(set.index_of_node(NodeId::new(99)), None);
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn concurrent_puts_and_gets() {
        use std::sync::Arc;
        let p = Arc::new(provider());
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let p = Arc::clone(&p);
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        let id = BlockId::new(t * 1000 + i);
                        p.put(id, Bytes::from(vec![t as u8; 16]));
                        assert_eq!(p.get(id).unwrap().len(), 16);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(p.block_count(), 800);
        assert_eq!(p.bytes_stored(), 800 * 16);
    }
}
