//! Durable, log-structured backends for the BlobSeer port traits.
//!
//! The in-memory adapters in `blobseer-core` model the paper's services
//! as they behave *within* one process lifetime; this crate gives the
//! same three ports a disk form so a deployment survives a full stop:
//!
//! * [`volume::DiskProviderSet`] — a [`blobseer_core::ports::BlockStore`]
//!   of needle/volume files: every put appends one framed record, an
//!   in-memory offset index (rebuilt by replay on open) locates blocks
//!   for single positional reads, deletes append tombstones.
//! * [`record_log::DiskMetaStore`] — a [`blobseer_core::ports::MetaStore`]
//!   of per-shard record logs + memtables, persisting tree nodes in the
//!   same encoding they travel the RPC wire in
//!   ([`blobseer_core::meta::codec`]), with the same `hash64 % shards`
//!   placement as the in-memory DHT.
//! * [`version_log::DurableVersionService`] — a
//!   [`blobseer_core::ports::VersionService`] that logs every successful
//!   mutation and rebuilds by deterministic replay, verifying the
//!   replayed ids/versions against what the log recorded.
//!
//! All three stand on one primitive, [`frame::FrameLog`]: length-prefixed,
//! CRC-32-checksummed frames on an append-only file, where opening scans
//! the log and **truncates at the first torn or corrupt frame** — a crash
//! mid-write (the paper's append-only data model makes this the *only*
//! on-disk failure mode short of media corruption) costs at most the
//! unacknowledged tail, never a panic or a garbage read. The
//! crash-consistency suite (`tests/crash_consistency.rs`) proves this by
//! truncating logs at every byte offset of their final frame.
//!
//! Every store exposes an explicit `reopen()` that simulates a process
//! restart in place (drop state, rescan, rebuild), which is what the
//! equivalence and restart suites drive. [`testutil::TempDir`] is the
//! std-only scaffolding those suites share.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod frame;
pub mod record_log;
pub mod testutil;
pub mod version_log;
pub mod volume;

pub use frame::FrameLog;
pub use record_log::DiskMetaStore;
pub use version_log::DurableVersionService;
pub use volume::{DiskProviderSet, DiskVolume};
