//! Disk-backed data providers: one append-only **volume** file per
//! provider plus a rebuildable in-memory offset index.
//!
//! The design is the needle/volume layout of append-only photo/blob
//! stores, which the paper's append-only data model (§III-A.4: "no
//! existing data or metadata is ever modified") makes a perfect fit:
//! every put appends one framed record and remembers `block id → (file
//! offset, length)` in a hash map; gets are a single positional read at
//! the remembered extent; deletes append a tombstone record and drop the
//! index entry — the payload bytes stay where they are (space reclaim by
//! volume compaction is out of scope, matching the GC model where
//! release, not reuse, is what the protocol needs).
//!
//! The index is *soft state*: opening a volume replays its record log
//! (already torn-tail-truncated by [`FrameLog`]) and rebuilds the map, so
//! a process restart recovers exactly the committed puts minus the
//! committed tombstones. Record payloads inside each frame:
//!
//! ```text
//! put:       tag 1 | block id varint | payload (length-prefixed)
//! tombstone: tag 2 | block id varint
//! ```
//!
//! [`DiskProviderSet`] mirrors the semantics of the in-memory
//! [`blobseer_core::block_store::ProviderSet`] exactly — idempotent
//! re-puts append nothing, conflicting re-puts are an engine bug (debug
//! builds verify content equality against the stored bytes), per-item
//! vectored results, `puts`/`gets` counted per attempted operation — so
//! the op-script equivalence suite can hold the two backends against each
//! other. One deliberate difference: op counters restart at zero on
//! reopen (they are process-lifetime statistics, not durable state).

use crate::frame::{read_exact_at, FrameLog, MAX_FRAME_PAYLOAD};
use blobseer_core::ports::BlockStore;
use blobseer_types::wire::{WireReader, WireWriter};
use blobseer_types::{BlockId, Error, NodeId, Result};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const REC_PUT: u8 = 1;
const REC_TOMBSTONE: u8 = 2;

/// Where a live block's payload sits in the volume file.
#[derive(Clone, Copy, Debug)]
struct Extent {
    offset: u64,
    len: u32,
}

/// One provider's volume: the append handle, the read handle and the
/// offset index.
pub struct DiskVolume {
    node: NodeId,
    path: PathBuf,
    /// Append state; also serializes index *mutations* so the record log
    /// and the map can never disagree about operation order.
    log: Mutex<FrameLog>,
    /// Positional-read handle, replaced on [`Self::reopen`]. Reads clone
    /// the `Arc` out and read without any volume lock held.
    reader: RwLock<Arc<File>>,
    index: RwLock<HashMap<BlockId, Extent>>,
    bytes_stored: AtomicU64,
    puts: AtomicU64,
    gets: AtomicU64,
}

/// Replays a volume file, returning the recovered log and index state.
fn load(path: &Path) -> Result<(FrameLog, HashMap<BlockId, Extent>, u64)> {
    let mut index = HashMap::new();
    let mut bytes = 0u64;
    let log = FrameLog::open_with(path, |payload_off, payload| {
        let mut r = WireReader::new(payload);
        let tag = r.get_u8().map_err(|e| bad_record(path, &e))?;
        let id = BlockId::new(r.get_u64().map_err(|e| bad_record(path, &e))?);
        match tag {
            REC_PUT => {
                let data = r.get_slice().map_err(|e| bad_record(path, &e))?;
                // The payload sits at the end of the record; its file
                // offset is the record's offset plus the record header
                // (tag + id varint + length varint) it follows.
                let data_off = payload_off + (payload.len() - r.remaining() - data.len()) as u64;
                let ext = Extent {
                    offset: data_off,
                    len: data.len() as u32,
                };
                if let Some(prev) = index.insert(id, ext) {
                    // A put frame for a live id only happens via
                    // delete + re-put interleavings torn down to a
                    // prefix that kept both puts; last write wins,
                    // like replaying the ops would.
                    bytes -= prev.len as u64;
                }
                bytes += ext.len as u64;
            }
            REC_TOMBSTONE => {
                if let Some(prev) = index.remove(&id) {
                    bytes -= prev.len as u64;
                }
            }
            t => {
                return Err(Error::Storage(format!(
                    "{}: unknown volume record tag {t}",
                    path.display()
                )))
            }
        }
        Ok(())
    })?;
    Ok((log, index, bytes))
}

fn bad_record(path: &Path, e: &Error) -> Error {
    // A checksummed frame that fails to decode means the writer was
    // broken, not the medium — surface it instead of truncating.
    Error::Storage(format!(
        "{}: undecodable volume record: {e}",
        path.display()
    ))
}

impl DiskVolume {
    /// Opens (or creates) the volume at `path`, rebuilding the offset
    /// index from the record log.
    pub fn open(path: impl Into<PathBuf>, node: NodeId) -> Result<Self> {
        let path = path.into();
        let (log, index, bytes) = load(&path)?;
        let reader = log.reader();
        Ok(Self {
            node,
            path,
            log: Mutex::named(log, "disk.volume.log"),
            reader: RwLock::named(reader, "disk.volume.reader"),
            index: RwLock::named(index, "disk.volume.index"),
            bytes_stored: AtomicU64::new(bytes),
            puts: AtomicU64::new(0),
            gets: AtomicU64::new(0),
        })
    }

    /// Simulates a process restart in place: drops the file handles,
    /// rescans the record log and rebuilds the index. Op counters reset
    /// (they are process statistics); stored state must not change —
    /// the equivalence tests close/reopen mid-script on exactly this.
    pub fn reopen(&self) -> Result<()> {
        let mut log = self.log.lock();
        let mut index = self.index.write();
        let (new_log, new_index, bytes) = load(&self.path)?;
        *self.reader.write() = new_log.reader();
        *log = new_log;
        *index = new_index;
        self.bytes_stored.store(bytes, Ordering::Relaxed);
        self.puts.store(0, Ordering::Relaxed);
        self.gets.store(0, Ordering::Relaxed);
        Ok(())
    }

    /// The cluster node hosting this provider.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The volume file (crash tests truncate it at chosen offsets).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Forces appended records to stable storage.
    pub fn sync(&self) -> Result<()> {
        self.log.lock().sync()
    }

    fn encode_put(id: BlockId, data: &[u8]) -> Result<Vec<u8>> {
        let mut w = WireWriter::new();
        w.put_u8(REC_PUT);
        w.put_u64(id.raw());
        w.put_slice(data);
        let payload = w.into_vec();
        if payload.len() > MAX_FRAME_PAYLOAD as usize {
            return Err(Error::Storage(format!(
                "block {id} of {} bytes exceeds the volume frame cap",
                data.len()
            )));
        }
        Ok(payload)
    }

    fn encode_tombstone(id: BlockId) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_u8(REC_TOMBSTONE);
        w.put_u64(id.raw());
        w.into_vec()
    }

    /// In debug builds, verifies an attempted re-put carries the stored
    /// content — the same immutability tripwire the in-memory provider
    /// arms.
    fn debug_check_reput(&self, id: BlockId, ext: Extent, data: &[u8]) {
        if cfg!(debug_assertions) {
            let existing = self
                .read_extent(ext)
                .unwrap_or_else(|e| panic!("re-put validation read failed: {e}"));
            assert_eq!(
                &existing[..],
                data,
                "block {id} rewritten with different content — blocks are immutable"
            );
        }
    }

    fn read_extent(&self, ext: Extent) -> Result<Bytes> {
        let file = Arc::clone(&self.reader.read());
        let mut buf = vec![0u8; ext.len as usize];
        read_exact_at(&file, &self.path, &mut buf, ext.offset)?;
        Ok(Bytes::from(buf))
    }

    /// Stores a block (idempotent re-puts append nothing).
    pub fn put(&self, id: BlockId, data: Bytes) -> Result<()> {
        let mut log = self.log.lock();
        self.puts.fetch_add(1, Ordering::Relaxed);
        if let Some(&ext) = self.index.read().get(&id) {
            self.debug_check_reput(id, ext, &data);
            return Ok(());
        }
        let payload = Self::encode_put(id, &data)?;
        let payload_off = log.append(&payload)?;
        let ext = Extent {
            offset: payload_off + (payload.len() - data.len()) as u64,
            len: data.len() as u32,
        };
        self.index.write().insert(id, ext);
        self.bytes_stored
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Stores a batch with one `write_all` for all new records.
    pub fn put_many(&self, items: &[(BlockId, Bytes)]) -> Vec<Result<()>> {
        let mut log = self.log.lock();
        self.puts.fetch_add(items.len() as u64, Ordering::Relaxed);
        let mut out: Vec<Result<()>> = (0..items.len()).map(|_| Ok(())).collect();
        // Which items append a record (first occurrence of a new id).
        let mut fresh: Vec<(usize, Vec<u8>)> = Vec::new();
        let mut fresh_ids: HashMap<BlockId, usize> = HashMap::new();
        {
            let index = self.index.read();
            for (i, (id, data)) in items.iter().enumerate() {
                if let Some(&ext) = index.get(id) {
                    self.debug_check_reput(*id, ext, data);
                    continue;
                }
                if let Some(&first) = fresh_ids.get(id) {
                    // Intra-batch re-put: idempotent against the first
                    // occurrence (deterministic content, as everywhere).
                    debug_assert_eq!(
                        items[first].1, *data,
                        "block {id} rewritten with different content — blocks are immutable"
                    );
                    continue;
                }
                match Self::encode_put(*id, data) {
                    Ok(payload) => {
                        fresh_ids.insert(*id, i);
                        fresh.push((i, payload));
                    }
                    Err(e) => out[i] = Err(e),
                }
            }
        }
        let offsets = match log.append_many(fresh.iter().map(|(_, p)| p.as_slice())) {
            Ok(offsets) => offsets,
            Err(e) => {
                for (i, _) in &fresh {
                    out[*i] = Err(e.clone());
                }
                return out;
            }
        };
        let mut index = self.index.write();
        for ((i, payload), payload_off) in fresh.iter().zip(offsets) {
            let len = items[*i].1.len();
            index.insert(
                items[*i].0,
                Extent {
                    offset: payload_off + (payload.len() - len) as u64,
                    len: len as u32,
                },
            );
            self.bytes_stored.fetch_add(len as u64, Ordering::Relaxed);
        }
        out
    }

    /// Fetches a block with one positional read.
    pub fn get(&self, id: BlockId) -> Result<Bytes> {
        self.gets.fetch_add(1, Ordering::Relaxed);
        let ext = match self.index.read().get(&id) {
            Some(&ext) => ext,
            None => return Err(Error::MissingBlock(id.raw())),
        };
        self.read_extent(ext)
    }

    /// Fetches a batch: one index pass, then one positional read per hit.
    pub fn get_many(&self, ids: &[BlockId]) -> Vec<Result<Bytes>> {
        self.gets.fetch_add(ids.len() as u64, Ordering::Relaxed);
        let extents: Vec<Option<Extent>> = {
            let index = self.index.read();
            ids.iter().map(|id| index.get(id).copied()).collect()
        };
        ids.iter()
            .zip(extents)
            .map(|(id, ext)| match ext {
                Some(ext) => self.read_extent(ext),
                None => Err(Error::MissingBlock(id.raw())),
            })
            .collect()
    }

    /// True if the volume holds the block.
    pub fn contains(&self, id: BlockId) -> bool {
        self.index.read().contains_key(&id)
    }

    /// Deletes a block: appends a tombstone, drops the index entry.
    /// Returns the bytes freed (0 if absent — no tombstone appended).
    pub fn delete(&self, id: BlockId) -> Result<u64> {
        let mut log = self.log.lock();
        let ext = match self.index.read().get(&id) {
            Some(&ext) => ext,
            None => return Ok(0),
        };
        log.append(&Self::encode_tombstone(id))?;
        self.index.write().remove(&id);
        self.bytes_stored
            .fetch_sub(ext.len as u64, Ordering::Relaxed);
        Ok(ext.len as u64)
    }

    /// Deletes a batch with one `write_all` for all tombstones.
    pub fn delete_many(&self, ids: &[BlockId]) -> Vec<Result<u64>> {
        let mut log = self.log.lock();
        let mut out = vec![Ok(0u64); ids.len()];
        let mut doomed: Vec<(usize, BlockId, Vec<u8>, u32)> = Vec::new();
        {
            let index = self.index.read();
            let mut pending: HashMap<BlockId, ()> = HashMap::new();
            for (i, id) in ids.iter().enumerate() {
                // An intra-batch duplicate sees the earlier tombstone,
                // exactly like the sequential op order would.
                if pending.contains_key(id) {
                    continue;
                }
                if let Some(&ext) = index.get(id) {
                    pending.insert(*id, ());
                    doomed.push((i, *id, Self::encode_tombstone(*id), ext.len));
                }
            }
        }
        if let Err(e) = log.append_many(doomed.iter().map(|(_, _, p, _)| p.as_slice())) {
            for (i, _, _, _) in &doomed {
                out[*i] = Err(e.clone());
            }
            return out;
        }
        let mut index = self.index.write();
        for (i, id, _, len) in doomed {
            index.remove(&id);
            self.bytes_stored.fetch_sub(len as u64, Ordering::Relaxed);
            out[i] = Ok(len as u64);
        }
        out
    }

    /// Number of live blocks.
    pub fn block_count(&self) -> usize {
        self.index.read().len()
    }

    /// Live payload bytes (tombstoned extents excluded).
    pub fn bytes_stored(&self) -> u64 {
        self.bytes_stored.load(Ordering::Relaxed)
    }

    /// `(puts, gets)` attempted since open/reopen.
    pub fn op_counts(&self) -> (u64, u64) {
        (
            self.puts.load(Ordering::Relaxed),
            self.gets.load(Ordering::Relaxed),
        )
    }
}

/// A dense set of disk-backed providers under one data directory —
/// provider `i`'s volume lives at `dir/provider-NNN.vol`.
pub struct DiskProviderSet {
    volumes: Vec<DiskVolume>,
}

/// The volume file backing provider `i` under `dir`.
pub fn volume_path(dir: &Path, provider: usize) -> PathBuf {
    dir.join(format!("provider-{provider:03}.vol"))
}

impl DiskProviderSet {
    /// Opens (or creates) `n` provider volumes under `dir`, hosted on the
    /// nodes produced by `node_of`.
    pub fn open(
        dir: impl AsRef<Path>,
        n: usize,
        node_of: impl Fn(usize) -> NodeId,
    ) -> Result<Self> {
        assert!(n > 0, "need at least one data provider");
        let dir = dir.as_ref();
        let volumes = (0..n)
            .map(|i| DiskVolume::open(volume_path(dir, i), node_of(i)))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self { volumes })
    }

    /// Builds a set from already-opened volumes — how a deployment that
    /// runs one provider per server process (the loopback cluster) wraps
    /// each server's single volume.
    pub fn from_volumes(volumes: Vec<DiskVolume>) -> Self {
        assert!(!volumes.is_empty(), "need at least one data provider");
        Self { volumes }
    }

    /// The volume behind provider `i`.
    pub fn volume(&self, i: usize) -> &DiskVolume {
        &self.volumes[i]
    }

    /// Reopens every volume in place (simulated restart of all provider
    /// processes).
    pub fn reopen(&self) -> Result<()> {
        for v in &self.volumes {
            v.reopen()?;
        }
        Ok(())
    }

    /// Forces every volume's appended records to stable storage.
    pub fn sync(&self) -> Result<()> {
        for v in &self.volumes {
            v.sync()?;
        }
        Ok(())
    }
}

impl BlockStore for DiskProviderSet {
    fn len(&self) -> usize {
        self.volumes.len()
    }
    fn node(&self, provider: usize) -> NodeId {
        self.volumes[provider].node()
    }
    fn index_of_node(&self, node: NodeId) -> Option<usize> {
        self.volumes.iter().position(|v| v.node() == node)
    }
    fn put(&self, provider: usize, id: BlockId, data: Bytes) -> Result<()> {
        self.volumes[provider].put(id, data)
    }
    fn get(&self, provider: usize, id: BlockId) -> Result<Bytes> {
        self.volumes[provider].get(id)
    }
    fn contains(&self, provider: usize, id: BlockId) -> bool {
        self.volumes[provider].contains(id)
    }
    fn delete(&self, provider: usize, id: BlockId) -> Result<u64> {
        self.volumes[provider].delete(id)
    }
    fn put_many(&self, provider: usize, items: &[(BlockId, Bytes)]) -> Vec<Result<()>> {
        self.volumes[provider].put_many(items)
    }
    fn get_many(&self, provider: usize, ids: &[BlockId]) -> Vec<Result<Bytes>> {
        self.volumes[provider].get_many(ids)
    }
    fn delete_many(&self, provider: usize, ids: &[BlockId]) -> Vec<Result<u64>> {
        self.volumes[provider].delete_many(ids)
    }
    fn block_count(&self, provider: usize) -> usize {
        self.volumes[provider].block_count()
    }
    fn bytes_stored(&self, provider: usize) -> u64 {
        self.volumes[provider].bytes_stored()
    }
    fn op_counts(&self, provider: usize) -> (u64, u64) {
        self.volumes[provider].op_counts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;

    fn set(dir: &Path) -> DiskProviderSet {
        DiskProviderSet::open(dir, 2, |i| NodeId::new(i as u64)).unwrap()
    }

    #[test]
    fn put_get_roundtrip_and_counters() {
        let tmp = TempDir::new("vol-roundtrip");
        let s = set(tmp.path());
        let data = Bytes::from_static(b"hello blocks");
        s.put(0, BlockId::new(1), data.clone()).unwrap();
        assert_eq!(s.get(0, BlockId::new(1)).unwrap(), data);
        assert_eq!(s.block_count(0), 1);
        assert_eq!(s.bytes_stored(0), 12);
        assert_eq!(s.op_counts(0), (1, 1));
        assert_eq!(s.layout_vector(), vec![1, 0]);
        assert_eq!(s.index_of_node(NodeId::new(1)), Some(1));
        assert_eq!(
            s.get(1, BlockId::new(1)),
            Err(Error::MissingBlock(1)),
            "providers are separate volumes"
        );
    }

    #[test]
    fn state_survives_reopen() {
        let tmp = TempDir::new("vol-reopen");
        let s = set(tmp.path());
        s.put(0, BlockId::new(1), Bytes::from_static(b"keep"))
            .unwrap();
        s.put(0, BlockId::new(2), Bytes::from_static(b"drop"))
            .unwrap();
        s.put(1, BlockId::new(3), Bytes::from_static(b"other"))
            .unwrap();
        assert_eq!(s.delete(0, BlockId::new(2)).unwrap(), 4);
        drop(s);

        let s = set(tmp.path());
        assert_eq!(s.op_counts(0), (0, 0), "op counters are per process");
        assert_eq!(&s.get(0, BlockId::new(1)).unwrap()[..], b"keep");
        assert!(!s.contains(0, BlockId::new(2)), "tombstone replayed");
        assert_eq!(&s.get(1, BlockId::new(3)).unwrap()[..], b"other");
        assert_eq!(s.total_block_count(), 2);
        assert_eq!(s.total_bytes_stored(), 9);
    }

    #[test]
    fn in_place_reopen_preserves_state() {
        let tmp = TempDir::new("vol-inplace");
        let s = set(tmp.path());
        for k in 0..50u64 {
            s.put(
                (k % 2) as usize,
                BlockId::new(k),
                Bytes::from(vec![k as u8; 8]),
            )
            .unwrap();
        }
        s.delete(0, BlockId::new(4)).unwrap();
        let before: Vec<u64> = s.layout_vector();
        s.reopen().unwrap();
        assert_eq!(s.layout_vector(), before);
        assert_eq!(&s.get(0, BlockId::new(6)).unwrap()[..], &[6u8; 8]);
        assert!(!s.contains(0, BlockId::new(4)));
        // Writes keep working after the in-place restart.
        s.put(0, BlockId::new(100), Bytes::from_static(b"post"))
            .unwrap();
        assert_eq!(&s.get(0, BlockId::new(100)).unwrap()[..], b"post");
    }

    #[test]
    fn delete_then_reput_replays_in_order() {
        let tmp = TempDir::new("vol-reput");
        let s = set(tmp.path());
        s.put(0, BlockId::new(7), Bytes::from_static(b"v")).unwrap();
        assert_eq!(s.delete(0, BlockId::new(7)).unwrap(), 1);
        s.put(0, BlockId::new(7), Bytes::from_static(b"v")).unwrap();
        drop(s);
        let s = set(tmp.path());
        assert_eq!(&s.get(0, BlockId::new(7)).unwrap()[..], b"v");
        assert_eq!(s.bytes_stored(0), 1, "no double counting across replay");
    }

    #[test]
    fn idempotent_reput_appends_nothing() {
        let tmp = TempDir::new("vol-idem");
        let s = set(tmp.path());
        s.put(0, BlockId::new(1), Bytes::from_static(b"same"))
            .unwrap();
        let len_after_first = std::fs::metadata(volume_path(tmp.path(), 0)).unwrap().len();
        s.put(0, BlockId::new(1), Bytes::from_static(b"same"))
            .unwrap();
        assert_eq!(
            std::fs::metadata(volume_path(tmp.path(), 0)).unwrap().len(),
            len_after_first
        );
        assert_eq!(s.op_counts(0).0, 2, "both puts counted");
        assert_eq!(s.bytes_stored(0), 4);
    }

    #[test]
    #[should_panic(expected = "blocks are immutable")]
    #[cfg(debug_assertions)]
    fn rewriting_a_block_panics_in_debug() {
        let tmp = TempDir::new("vol-immutable");
        let s = set(tmp.path());
        s.put(0, BlockId::new(1), Bytes::from_static(b"aa"))
            .unwrap();
        s.put(0, BlockId::new(1), Bytes::from_static(b"bb"))
            .unwrap();
    }

    #[test]
    fn vectored_ops_match_their_single_siblings() {
        let tmp = TempDir::new("vol-vectored");
        let s = set(tmp.path());
        let items: Vec<(BlockId, Bytes)> = (0..10u64)
            .map(|k| (BlockId::new(k), Bytes::from(vec![k as u8; 4])))
            .collect();
        assert!(s.put_many(0, &items).iter().all(|r| r.is_ok()));
        let ids: Vec<BlockId> = items.iter().map(|(id, _)| *id).collect();
        for (got, (_, want)) in s.get_many(0, &ids).into_iter().zip(&items) {
            assert_eq!(&got.unwrap(), want);
        }
        let freed = s.delete_many(0, &ids[..5]);
        assert!(freed.iter().all(|r| *r == Ok(4)));
        assert_eq!(s.block_count(0), 5);
        // Duplicate ids inside one batch behave like the op sequence.
        let dup = vec![ids[7], ids[7]];
        assert_eq!(s.delete_many(0, &dup), vec![Ok(4), Ok(0)]);
    }

    #[test]
    fn concurrent_puts_and_gets() {
        let tmp = TempDir::new("vol-concurrent");
        let s = Arc::new(set(tmp.path()));
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..50u64 {
                        let id = BlockId::new(t * 1000 + i);
                        s.put(0, id, Bytes::from(vec![t as u8; 16])).unwrap();
                        assert_eq!(s.get(0, id).unwrap().len(), 16);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(s.block_count(0), 400);
        assert_eq!(s.bytes_stored(0), 400 * 16);
        s.reopen().unwrap();
        assert_eq!(s.block_count(0), 400, "all interleaved puts recovered");
    }
}
