//! The checksummed frame log every durable file in this crate is built on.
//!
//! A frame log is an append-only file of self-delimiting records:
//!
//! ```text
//! ┌────────────┬────────────┬───────────────────┐
//! │ len: u32 LE│ crc: u32 LE│ payload (len bytes)│  … repeated
//! └────────────┴────────────┴───────────────────┘
//! ```
//!
//! `crc` is the CRC-32 (IEEE) of the payload alone; the 8-byte header is
//! protected indirectly — a corrupt `len` either points past the end of
//! the file or frames a byte range whose checksum cannot match.
//!
//! # Recovery rule
//!
//! On open, the log is scanned from the start and the file is truncated
//! at the first frame that is not fully committed:
//!
//! * fewer than 8 bytes remain → torn header;
//! * `len` exceeds [`MAX_FRAME_PAYLOAD`] → corrupt header;
//! * fewer than `len` payload bytes remain → torn payload;
//! * checksum mismatch → torn or corrupt payload.
//!
//! Everything before the cut is intact (each earlier frame passed its own
//! checksum); everything from the cut on is discarded. This is the
//! log-structured contract: a crash mid-`write` loses at most the
//! writes whose frames had not fully reached the file, never anything
//! acknowledged before them, and recovery can never surface garbage
//! bytes as a record. The kill-at-any-write-offset suite in
//! `tests/crash_consistency.rs` drives exactly this rule byte by byte.
//!
//! Writers append with one `write_all` per batch, so on a POSIX file
//! system a crashed writer leaves a *prefix* of the appended bytes —
//! the case the rule is designed around. `fsync` is a separate, optional
//! knob ([`FrameLog::sync`]): it narrows the window in which acknowledged
//! frames can be lost to a power failure, but recovery correctness never
//! depends on it.

use blobseer_types::{Error, Result};
use std::fs::{File, OpenOptions};
use std::io::{BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Bytes of framing overhead per record (`len` + `crc`).
pub const FRAME_HEADER_LEN: u64 = 8;

/// Upper bound on one frame's payload: a 64 MB block (the paper's block
/// size) plus record-header headroom. A corrupt length prefix must not
/// make recovery attempt a huge allocation.
pub const MAX_FRAME_PAYLOAD: u32 = 80 * 1024 * 1024;

// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the classic
// table-driven form, built at compile time. Hand-rolled because the
// sandboxed build has no crates.io; the known-answer test below pins the
// implementation to the standard check value.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Maps an I/O failure on `path` into [`Error::Storage`] with context.
pub fn storage_err(path: &Path, context: &str, e: std::io::Error) -> Error {
    Error::Storage(format!("{}: {context}: {e}", path.display()))
}

/// Encodes one frame (header + payload) into `out`.
pub fn encode_frame_into(out: &mut Vec<u8>, payload: &[u8]) {
    debug_assert!(payload.len() <= MAX_FRAME_PAYLOAD as usize);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// An open frame log: the append handle plus the committed tail offset.
///
/// One `FrameLog` is single-writer (callers wrap it in a mutex); reads
/// happen concurrently through [`Self::reader`] clones using positional
/// I/O, without touching the writer state.
pub struct FrameLog {
    path: PathBuf,
    file: Arc<File>,
    /// Offset one past the last fully-committed frame.
    tail: u64,
}

impl FrameLog {
    /// Opens `path` (creating it and missing parent directories if
    /// absent), replays every committed frame through `visit` as
    /// `(payload_file_offset, payload)`, and truncates a torn tail per
    /// the module-level recovery rule.
    ///
    /// `visit` returning `Err` aborts the open: a checksummed frame that
    /// the caller cannot decode means the writer was broken, which
    /// truncation must not paper over.
    pub fn open_with(
        path: impl Into<PathBuf>,
        mut visit: impl FnMut(u64, &[u8]) -> Result<()>,
    ) -> Result<Self> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| storage_err(&path, "create data directory", e))?;
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| storage_err(&path, "open frame log", e))?;
        let file_len = file
            .metadata()
            .map_err(|e| storage_err(&path, "stat frame log", e))?
            .len();

        // Sequential scan: committed frames are visited, the first torn
        // or corrupt frame ends the log.
        let mut reader = BufReader::new(&file);
        let mut offset = 0u64;
        let mut payload = Vec::new();
        while offset + FRAME_HEADER_LEN <= file_len {
            let mut header = [0u8; FRAME_HEADER_LEN as usize];
            reader
                .read_exact(&mut header)
                .map_err(|e| storage_err(&path, "read frame header", e))?;
            let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
            let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
            if len > MAX_FRAME_PAYLOAD || offset + FRAME_HEADER_LEN + len as u64 > file_len {
                break; // corrupt length or torn payload
            }
            payload.resize(len as usize, 0);
            reader
                .read_exact(&mut payload)
                .map_err(|e| storage_err(&path, "read frame payload", e))?;
            if crc32(&payload) != crc {
                break; // torn or corrupt payload
            }
            visit(offset + FRAME_HEADER_LEN, &payload)?;
            offset += FRAME_HEADER_LEN + len as u64;
        }
        drop(reader);

        if offset < file_len {
            file.set_len(offset)
                .map_err(|e| storage_err(&path, "truncate torn tail", e))?;
        }
        file.seek(SeekFrom::Start(offset))
            .map_err(|e| storage_err(&path, "seek to tail", e))?;
        Ok(Self {
            path,
            file: Arc::new(file),
            tail: offset,
        })
    }

    /// [`Self::open_with`] without a replay visitor.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self> {
        Self::open_with(path, |_, _| Ok(()))
    }

    /// Appends one frame; returns the file offset of its payload.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64> {
        let offsets = self.append_many(std::iter::once(payload))?;
        Ok(offsets[0])
    }

    /// Appends a batch of frames with a single `write_all`, so a crash
    /// tears at most the batch's own suffix. Returns the payload offset
    /// of each frame, in order.
    pub fn append_many<'a>(
        &mut self,
        payloads: impl Iterator<Item = &'a [u8]>,
    ) -> Result<Vec<u64>> {
        let mut buf = Vec::new();
        let mut offsets = Vec::new();
        for payload in payloads {
            offsets.push(self.tail + buf.len() as u64 + FRAME_HEADER_LEN);
            encode_frame_into(&mut buf, payload);
        }
        if buf.is_empty() {
            return Ok(offsets);
        }
        (&*self.file)
            .write_all(&buf)
            .map_err(|e| storage_err(&self.path, "append frames", e))?;
        self.tail += buf.len() as u64;
        Ok(offsets)
    }

    /// Reads `buf.len()` bytes at `offset` through the writer handle.
    /// Concurrent readers should prefer a [`Self::reader`] clone.
    pub fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> Result<()> {
        read_exact_at(&self.file, &self.path, buf, offset)
    }

    /// A cloneable handle for lock-free positional reads of committed
    /// payloads (Linux `pread` never disturbs the append position).
    pub fn reader(&self) -> Arc<File> {
        Arc::clone(&self.file)
    }

    /// Offset one past the last committed frame — the length a crash-free
    /// close leaves the file at.
    pub fn committed_len(&self) -> u64 {
        self.tail
    }

    /// The file backing this log.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Discards every frame (the disk analogue of crashing a RAM shard:
    /// used by `MetaStore::crash_shard`).
    pub fn truncate_all(&mut self) -> Result<()> {
        self.file
            .set_len(0)
            .map_err(|e| storage_err(&self.path, "truncate log", e))?;
        (&*self.file)
            .seek(SeekFrom::Start(0))
            .map_err(|e| storage_err(&self.path, "seek to start", e))?;
        self.tail = 0;
        Ok(())
    }

    /// Forces appended frames to stable storage (`fsync`). Optional:
    /// recovery correctness never depends on it (see module docs).
    pub fn sync(&self) -> Result<()> {
        self.file
            .sync_data()
            .map_err(|e| storage_err(&self.path, "fsync", e))
    }
}

/// Positional read helper shared with the volume's lock-free read path.
pub fn read_exact_at(file: &File, path: &Path, buf: &mut [u8], offset: u64) -> Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
        .map_err(|e| storage_err(path, "positional read", e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;

    #[test]
    fn crc32_known_answer() {
        // The standard CRC-32/IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_survive_close_and_reopen() {
        let tmp = TempDir::new("frame-reopen");
        let path = tmp.path().join("log");
        let mut log = FrameLog::open(&path).unwrap();
        log.append(b"alpha").unwrap();
        log.append_many([&b"beta"[..], &b""[..], &b"gamma"[..]].into_iter())
            .unwrap();
        let committed = log.committed_len();
        drop(log);

        let mut seen = Vec::new();
        let log = FrameLog::open_with(&path, |off, payload| {
            seen.push((off, payload.to_vec()));
            Ok(())
        })
        .unwrap();
        assert_eq!(log.committed_len(), committed);
        let payloads: Vec<&[u8]> = seen.iter().map(|(_, p)| p.as_slice()).collect();
        assert_eq!(payloads, vec![&b"alpha"[..], b"beta", b"", b"gamma"]);
        // Offsets point at the payloads themselves.
        let mut buf = vec![0u8; 5];
        log.read_exact_at(&mut buf, seen[0].0).unwrap();
        assert_eq!(&buf, b"alpha");
    }

    #[test]
    fn torn_tail_is_truncated_at_every_offset() {
        let tmp = TempDir::new("frame-torn");
        let pristine = tmp.path().join("pristine");
        let mut log = FrameLog::open(&pristine).unwrap();
        log.append(b"first").unwrap();
        let second_committed = log.committed_len();
        log.append(b"second-frame-payload").unwrap();
        let full = log.committed_len();
        drop(log);
        let bytes = std::fs::read(&pristine).unwrap();
        assert_eq!(bytes.len() as u64, full);

        for cut in second_committed..full {
            let path = tmp.path().join(format!("cut-{cut}"));
            std::fs::write(&path, &bytes[..cut as usize]).unwrap();
            let mut payloads = Vec::new();
            let log = FrameLog::open_with(&path, |_, p| {
                payloads.push(p.to_vec());
                Ok(())
            })
            .unwrap();
            assert_eq!(payloads, vec![b"first".to_vec()], "cut at {cut}");
            assert_eq!(log.committed_len(), second_committed);
            // The torn suffix is physically gone.
            assert_eq!(
                std::fs::metadata(&path).unwrap().len(),
                second_committed,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn corrupt_middle_frame_drops_it_and_everything_after() {
        let tmp = TempDir::new("frame-corrupt");
        let path = tmp.path().join("log");
        let mut log = FrameLog::open(&path).unwrap();
        log.append(b"keep").unwrap();
        let keep_end = log.committed_len();
        let second_payload_off = log.append(b"damage-me").unwrap();
        log.append(b"casualty").unwrap();
        drop(log);

        let mut bytes = std::fs::read(&path).unwrap();
        bytes[second_payload_off as usize] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let mut payloads = Vec::new();
        let log = FrameLog::open_with(&path, |_, p| {
            payloads.push(p.to_vec());
            Ok(())
        })
        .unwrap();
        assert_eq!(payloads, vec![b"keep".to_vec()]);
        assert_eq!(log.committed_len(), keep_end);
    }

    #[test]
    fn oversized_length_prefix_is_treated_as_corruption() {
        let tmp = TempDir::new("frame-overlen");
        let path = tmp.path().join("log");
        let mut log = FrameLog::open(&path).unwrap();
        log.append(b"ok").unwrap();
        let end = log.committed_len();
        drop(log);
        // A header claiming a payload far past MAX_FRAME_PAYLOAD, then
        // plausible-looking bytes: recovery must stop at the bad header.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&[0xAB; 64]);
        std::fs::write(&path, &bytes).unwrap();
        let log = FrameLog::open(&path).unwrap();
        assert_eq!(log.committed_len(), end);
    }

    #[test]
    fn appends_resume_after_recovery() {
        let tmp = TempDir::new("frame-resume");
        let path = tmp.path().join("log");
        let mut log = FrameLog::open(&path).unwrap();
        log.append(b"one").unwrap();
        drop(log);
        // Tear the file mid-frame, then keep appending after recovery.
        let mut bytes = std::fs::read(&path).unwrap();
        let committed = bytes.len();
        bytes.extend_from_slice(&[9, 0, 0, 0]); // half a header
        std::fs::write(&path, &bytes).unwrap();
        let mut log = FrameLog::open(&path).unwrap();
        assert_eq!(log.committed_len(), committed as u64);
        log.append(b"two").unwrap();
        log.sync().unwrap();
        drop(log);
        let mut payloads = Vec::new();
        FrameLog::open_with(&path, |_, p| {
            payloads.push(p.to_vec());
            Ok(())
        })
        .unwrap();
        assert_eq!(payloads, vec![b"one".to_vec(), b"two".to_vec()]);
    }
}
